// Package shedding defines the update load-shedding strategies compared in
// the paper's evaluation (§4.2):
//
//   - Lira — the full system: GRIDREDUCE (α,l)-partitioning plus
//     GREEDYINCREMENT throttler setting.
//   - LiraGrid — the ablation without GRIDREDUCE: a uniform
//     l-partitioning, still with GREEDYINCREMENT.
//   - UniformDelta — one space-wide inaccuracy threshold chosen so the
//     modeled update volume meets the throttle fraction.
//   - RandomDrop — no source-side throttling at all: every node reports
//     at Δ⊢ and the server randomly admits a z fraction.
//
// Every strategy is a thin adapter over the control plane's pluggable
// policies (internal/controlplane): Configure resolves the legacy Kind
// to its registry policy and runs ConfigurePolicy, which either drives
// the engine's own adaptation pipeline (SetPolicy + Adapt, stepping
// telemetry) or — for AdmitProber policies like random drop, which shed
// at the server rather than at the sources — computes the space-wide
// admit-probability outcome directly from the statistics grid.
package shedding

import (
	"fmt"
	"time"

	"lira/internal/controlplane"
	"lira/internal/fmodel"
	"lira/internal/partition"
	"lira/internal/statgrid"
)

// Kind identifies a strategy.
type Kind int

const (
	// Lira is the full region-aware load shedder.
	Lira Kind = iota
	// LiraGrid replaces GRIDREDUCE with a uniform l-partitioning.
	LiraGrid
	// UniformDelta uses a single system-wide inaccuracy threshold.
	UniformDelta
	// RandomDrop drops excess updates at the server, uniformly at random.
	RandomDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Lira:
		return "lira"
	case LiraGrid:
		return "lira-grid"
	case UniformDelta:
		return "uniform-delta"
	case RandomDrop:
		return "random-drop"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindForLegacy maps a registry LegacyKind string back to the enum.
func kindForLegacy(s string) (Kind, bool) {
	for _, k := range []Kind{Lira, LiraGrid, UniformDelta, RandomDrop} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Kinds lists every strategy in the paper's comparison order. The order
// is derived from the canonical policy registry — the registry rows that
// carry a LegacyKind, in registry order — so the enum's comparison order
// and the policy comparison order can never drift apart.
func Kinds() []Kind {
	var ks []Kind
	for _, reg := range controlplane.Registered() {
		if reg.LegacyKind == "" {
			continue
		}
		k, ok := kindForLegacy(reg.LegacyKind)
		if !ok {
			panic(fmt.Sprintf("shedding: registry legacy kind %q has no enum value", reg.LegacyKind))
		}
		ks = append(ks, k)
	}
	return ks
}

// PolicyNameForKind resolves a legacy strategy to the registry name of
// the controlplane.Policy that backs it.
func PolicyNameForKind(k Kind) (string, bool) {
	for _, reg := range controlplane.Registered() {
		if reg.LegacyKind == k.String() {
			return reg.Name, true
		}
	}
	return "", false
}

// PolicyForKind constructs a fresh instance of the policy backing a
// legacy strategy.
func PolicyForKind(k Kind) (controlplane.Policy, bool) {
	name, ok := PolicyNameForKind(k)
	if !ok {
		return nil, false
	}
	return controlplane.NewPolicy(name)
}

// Options carries the strategy parameters that do not live on the server.
type Options struct {
	// L is the region count for LiraGrid.
	L int
	// Curve is the update reduction function.
	Curve *fmodel.Curve
	// Fairness is Δ⇔ for the GREEDYINCREMENT-based strategies.
	Fairness float64
	// UseSpeed enables the §3.1.2 speed factor.
	UseSpeed bool
}

// Target is the slice of an engine ConfigurePolicy needs: the control
// plane to install the policy on, the adaptation entry point to run it,
// and the statistics grid for server-side (AdmitProber) policies. Both
// engine.Engine implementations satisfy it.
type Target interface {
	ControlPlane() *controlplane.Plane
	Adapt(z float64) (*controlplane.Adaptation, error)
	StatsGrid() *statgrid.Grid
}

// Outcome is a configured shedding policy, ready for distribution to the
// base-station layer.
type Outcome struct {
	// Kind is the legacy strategy enum value, or -1 when the configured
	// policy has no legacy counterpart (post-paper policies reached
	// through ConfigurePolicy directly).
	Kind Kind
	// Policy is the registry name of the configured policy.
	Policy string
	Z      float64
	// Partitioning and Deltas define the region-dependent inaccuracy
	// thresholds. For RandomDrop and UniformDelta the partitioning is a
	// single space-wide region.
	Partitioning *partition.Partitioning
	Deltas       []float64
	// AdmitProbability is the server-side random admission probability:
	// 1 for the source-actuated strategies, z for RandomDrop.
	AdmitProbability float64
	// BudgetMet reports whether the modeled expenditure reached the
	// budget (always true for RandomDrop, which drops exactly enough).
	BudgetMet bool
	// Elapsed is the configuration cost (partitioning plus throttler
	// setting).
	Elapsed time.Duration
}

// Configure computes the shedding policy of the given legacy kind at
// throttle fraction z. It is a thin adapter: the kind resolves through
// the canonical registry to a controlplane.Policy and ConfigurePolicy
// does the work.
func Configure(kind Kind, t Target, z float64, opts Options) (*Outcome, error) {
	pol, ok := PolicyForKind(kind)
	if !ok {
		return nil, fmt.Errorf("shedding: unknown kind %v", kind)
	}
	out, err := ConfigurePolicy(pol, t, z, opts)
	if err != nil {
		return nil, err
	}
	out.Kind = kind
	return out, nil
}

// ConfigurePolicy configures any registry policy at throttle fraction z.
// Engine-enactable policies are installed on the target's control plane
// and run through its adaptation pipeline (journaling and spans
// included), exactly as the engine would enact them live. AdmitProber
// policies shed at the server instead, so there is nothing for the
// pipeline to enact: the outcome is the space-wide Δ⊢ partitioning with
// the policy's admission probability, computed without touching the
// plane. Stateful policies keep their held state on the instance — reuse
// one instance across re-adaptations to get damping, pass a fresh one to
// reset it.
func ConfigurePolicy(pol controlplane.Policy, t Target, z float64, opts Options) (*Outcome, error) {
	if z < 0 || z > 1 {
		return nil, fmt.Errorf("shedding: throttle fraction %v outside [0,1]", z)
	}
	if opts.Curve == nil {
		return nil, fmt.Errorf("shedding: nil curve")
	}
	start := time.Now()
	out := &Outcome{Kind: -1, Policy: pol.Name(), Z: z, AdmitProbability: 1}
	if k, ok := kindForLegacy(legacyKindForPolicy(pol.Name())); ok {
		out.Kind = k
	}
	if ap, serverSide := pol.(controlplane.AdmitProber); serverSide {
		out.Partitioning = partition.Single(t.StatsGrid())
		out.Deltas = []float64{opts.Curve.MinDelta()}
		out.AdmitProbability = ap.AdmitProbability(z)
		out.BudgetMet = true
		out.Elapsed = time.Since(start)
		return out, nil
	}
	t.ControlPlane().SetPolicy(pol)
	ad, err := t.Adapt(z)
	if err != nil {
		return nil, err
	}
	out.Partitioning = ad.Partitioning
	out.Deltas = ad.Deltas
	out.BudgetMet = ad.BudgetMet
	out.Elapsed = ad.Elapsed
	return out, nil
}

// legacyKindForPolicy is the inverse registry lookup: policy name to
// LegacyKind string ("" when the policy postdates the enum).
func legacyKindForPolicy(name string) string {
	for _, reg := range controlplane.Registered() {
		if reg.Name == name {
			return reg.LegacyKind
		}
	}
	return ""
}

// Package rng provides the deterministic pseudo-random number generator
// used by every stochastic component of the LIRA simulator.
//
// The generator is a splitmix64-seeded xoshiro256**, implemented locally so
// that simulation results are bit-for-bit reproducible regardless of the Go
// release. Streams can be split (derived) so independent subsystems — the
// road network, the trace, the workload — draw from uncorrelated sequences
// while sharing a single experiment seed.
//
// A Rand is not safe for concurrent use. To parallelize, split one child
// per goroutine from a parent before spawning, and hand each goroutine its
// own child:
//
//	root := rng.New(seed)
//	children := make([]*rng.Rand, workers)
//	for w := range children {
//		children[w] = root.Split(uint64(w)) // split before spawning
//	}
//	for w := 0; w < workers; w++ {
//		go func(r *rng.Rand) { /* draw only from r */ }(children[w])
//	}
//
// Because Split is itself deterministic, the set of child streams — and
// therefore the overall simulation — is reproducible no matter how the
// goroutines are scheduled, as long as each value is derived from a stream
// assigned by index rather than by arrival order.
package rng

import "math"

// Rand is a deterministic random number generator. It is not safe for
// concurrent use; derive one generator per goroutine with Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded with seed. Distinct seeds produce
// uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	// Seed the xoshiro state through splitmix64, as recommended by the
	// xoshiro authors, so that nearby seeds do not produce nearby states.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is a deterministic function of
// r's current state and label, and advances r. Use distinct labels for
// distinct subsystems.
func (r *Rand) Split(label uint64) *Rand {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + t>>32
	return hi, lo
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Box–Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Exp returns an exponentially distributed float64 with the given rate
// parameter (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It uses inverse-CDF sampling over a precomputed table and
// is intended for modest n (traffic-volume skew across road classes).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf returns a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package rng

import (
	"math"
	"sync"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between distinct seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(10) value %d drawn %d times, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNorm(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExp(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(0.5)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Errorf("Exp(0.5) mean = %v, want ~2", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(13)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(99)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams collided %d times", same)
	}
}

// TestSplitReproducible verifies the contract the package doc's
// per-goroutine example relies on: children split with the same labels
// from identically-seeded parents replay identical streams.
func TestSplitReproducible(t *testing.T) {
	mk := func() [][]uint64 {
		root := New(99)
		out := make([][]uint64, 4)
		for w := range out {
			child := root.Split(uint64(w))
			draws := make([]uint64, 256)
			for i := range draws {
				draws[i] = child.Uint64()
			}
			out[w] = draws
		}
		return out
	}
	a, b := mk(), mk()
	for w := range a {
		for i := range a[w] {
			if a[w][i] != b[w][i] {
				t.Fatalf("child %d draw %d not reproducible: %d vs %d", w, i, a[w][i], b[w][i])
			}
		}
	}
}

// TestSplitPerGoroutine runs the package doc's split-before-spawn pattern
// under the race detector and checks the concurrent draws match a serial
// replay of the same children, regardless of goroutine scheduling.
func TestSplitPerGoroutine(t *testing.T) {
	const workers, draws = 8, 512

	// Serial reference.
	root := New(4242)
	want := make([][]uint64, workers)
	for w := range want {
		child := root.Split(uint64(w))
		want[w] = make([]uint64, draws)
		for i := range want[w] {
			want[w][i] = child.Uint64()
		}
	}

	// Concurrent run: split all children first, then spawn.
	root = New(4242)
	children := make([]*Rand, workers)
	for w := range children {
		children[w] = root.Split(uint64(w))
	}
	got := make([][]uint64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			out := make([]uint64, draws)
			for i := range out {
				out[i] = children[w].Uint64()
			}
			got[w] = out
		}(w)
	}
	wg.Wait()

	for w := range want {
		for i := range want[w] {
			if got[w][i] != want[w][i] {
				t.Fatalf("goroutine %d draw %d: got %d, want %d", w, i, got[w][i], want[w][i])
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Rank 0 should get roughly 1/H(100) ≈ 19% of the mass for s=1.
	frac := float64(counts[0]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("Zipf rank-0 fraction = %v, want ~0.19", frac)
	}
}

func TestZipfPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(r, 0, 1) should panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestRange(t *testing.T) {
	r := New(21)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Range(5,10) = %v", v)
		}
	}
}

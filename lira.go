// Package lira is a from-scratch reproduction of "LIRA: Lightweight,
// Region-aware Load Shedding in Mobile CQ Systems" (Gedik, Liu, Wu, Yu —
// ICDE 2007).
//
// LIRA reduces the position-update load of a mobile continual-query (CQ)
// server by partitioning the monitored space into shedding regions and
// assigning each region an update throttler: the dead-reckoning inaccuracy
// threshold its mobile nodes use. Regions dense in nodes but sparse in
// queries are throttled aggressively; regions serving many queries keep
// high update resolution. The package exposes:
//
//   - the three server-side algorithms — GRIDREDUCE (region-aware space
//     partitioning over a statistics grid), GREEDYINCREMENT (optimal
//     throttler setting under an update budget and a fairness bound), and
//     THROTLOOP (closed-loop throttle-fraction control from queue
//     utilization);
//   - the full three-layer system — CQ server, base stations, and mobile
//     nodes with client-side dead reckoning and O(1) region lookup;
//   - the comparison baselines from the paper's evaluation (Random Drop,
//     Uniform Δ, Lira-Grid);
//   - a complete simulation substrate — synthetic hierarchical road
//     networks, traffic-volume-driven car traces, calibration of the
//     update reduction function f(Δ) — standing in for the paper's USGS
//     map and traffic data;
//   - the experiment harness regenerating every figure and table of the
//     paper's evaluation (see EXPERIMENTS.md).
//
// # Quick start
//
//	env, err := lira.NewEnv(lira.DefaultEnvConfig())
//	if err != nil { ... }
//	cfg := lira.DefaultRunConfig() // Table 2 defaults: l=250, z=0.5, ...
//	res, err := lira.Run(env, cfg)
//	fmt.Printf("containment error %.4f at %.0f%% update budget\n",
//		res.Metrics.MeanContainment, 100*res.Z)
//
// Lower-level building blocks (server, base stations, mobile nodes) are
// exported for embedding LIRA into an existing CQ system; see the examples
// directory.
package lira

import (
	"net/http"

	"lira/internal/basestation"
	"lira/internal/controlplane"
	"lira/internal/cqserver"
	"lira/internal/experiment"
	"lira/internal/faultnet"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/history"
	"lira/internal/metrics"
	"lira/internal/mobilenode"
	"lira/internal/motion"
	"lira/internal/netsvc"
	"lira/internal/partition"
	"lira/internal/plan"
	"lira/internal/roadnet"
	"lira/internal/routemodel"
	"lira/internal/shedding"
	"lira/internal/telemetry"
	"lira/internal/throtloop"
	"lira/internal/throttler"
	"lira/internal/trace"
	"lira/internal/workload"
)

// Geometry.
type (
	// Point is a planar location in meters.
	Point = geo.Point
	// Vector is a planar displacement or velocity.
	Vector = geo.Vector
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
)

// NewRect returns the rectangle spanned by two corners.
func NewRect(x0, y0, x1, y1 float64) Rect { return geo.NewRect(x0, y0, x1, y1) }

// Square returns the axis-aligned square centered at c.
func Square(c Point, side float64) Rect { return geo.Square(c, side) }

// Motion model and update reduction function.
type (
	// Report is a dead-reckoning motion report (position, velocity, time).
	Report = motion.Report
	// DeadReckoner tracks one node's motion model.
	DeadReckoner = motion.DeadReckoner
	// Curve is the κ-segment piece-wise-linear update reduction function
	// f(Δ).
	Curve = fmodel.Curve
)

// Hyperbolic returns the analytic default f(Δ) = Δ⊢/Δ with the given
// number of linear segments.
func Hyperbolic(minDelta, maxDelta float64, segments int) *Curve {
	return fmodel.Hyperbolic(minDelta, maxDelta, segments)
}

// NewCurve builds an f(Δ) curve from measured knots.
func NewCurve(minDelta, maxDelta float64, knots []float64) (*Curve, error) {
	return fmodel.NewCurve(minDelta, maxDelta, knots)
}

// Server layer.
type (
	// Server is the mobile CQ server (layer 1).
	Server = cqserver.Server
	// ServerConfig parameterizes a Server.
	ServerConfig = cqserver.Config
	// Update is a position-update message.
	Update = cqserver.Update
	// Adaptation is the output of one LIRA adaptation cycle.
	Adaptation = cqserver.Adaptation
	// Throtloop is the throttle-fraction feedback controller.
	Throtloop = throtloop.Controller
)

// NewServer validates cfg and returns a mobile CQ server.
func NewServer(cfg ServerConfig) (*Server, error) { return cqserver.New(cfg) }

// NewThrotloop returns a THROTLOOP controller for an input queue of
// maximum size b.
func NewThrotloop(b int) (*Throtloop, error) { return throtloop.New(b) }

// Partitioning and throttlers.
type (
	// Partitioning is a disjoint cover of the space by shedding regions.
	Partitioning = partition.Partitioning
	// Region is one shedding region with aggregated statistics.
	Region = partition.Region
	// RegionStat is the optimizer's per-region input.
	RegionStat = throttler.RegionStat
	// ThrottlerOptions configures GREEDYINCREMENT.
	ThrottlerOptions = throttler.Options
	// ThrottlerResult is GREEDYINCREMENT's output.
	ThrottlerResult = throttler.Result
)

// SetThrottlers runs GREEDYINCREMENT directly over per-region statistics.
func SetThrottlers(stats []RegionStat, curve *Curve, opts ThrottlerOptions) (*ThrottlerResult, error) {
	return throttler.SetThrottlers(stats, curve, opts)
}

// AlphaFor returns the statistics-grid resolution rule of §3.2.5:
// α = 2^⌊log₂(x·√l)⌋ (the paper uses x = 10).
func AlphaFor(l int, x float64) int { return partition.AlphaFor(l, x) }

// Base stations and mobile nodes.
type (
	// Station is a base station (layer 2).
	Station = basestation.Station
	// Assignment is a station's (region, throttler) broadcast subset.
	Assignment = basestation.Assignment
	// Deployment binds stations to assignments.
	Deployment = basestation.Deployment
	// Node is a mobile node (layer 3).
	Node = mobilenode.Node
	// CompiledAssignment is a station assignment compiled into the
	// node-side 5×5 lookup index.
	CompiledAssignment = mobilenode.Compiled
)

// PlaceUniform tiles the space with equal-radius stations.
func PlaceUniform(space Rect, radius float64) ([]Station, error) {
	return basestation.PlaceUniform(space, radius)
}

// PlaceDensityAware places small cells where nodes are dense and large
// cells where they are sparse.
func PlaceDensityAware(space Rect, nodes []Point, targetPerCell int, minRadius, maxRadius float64) ([]Station, error) {
	return basestation.PlaceDensityAware(space, nodes, targetPerCell, minRadius, maxRadius)
}

// NewDeployment computes every station's assignment for a partitioning and
// its throttlers.
func NewDeployment(stations []Station, p *Partitioning, deltas []float64) (*Deployment, error) {
	return basestation.NewDeployment(stations, p, deltas)
}

// StationFor returns the covering station nearest to p, or -1.
func StationFor(stations []Station, p Point) int { return basestation.StationFor(stations, p) }

// CompileAssignment builds the node-side lookup index for an assignment.
func CompileAssignment(a *Assignment) *CompiledAssignment { return mobilenode.Compile(a) }

// NewNode returns a mobile node with no station attached yet.
func NewNode(id int) *Node { return mobilenode.NewNode(id) }

// Shedding strategies.
type (
	// Strategy identifies a load-shedding strategy.
	Strategy = shedding.Kind
	// StrategyOptions carries strategy parameters.
	StrategyOptions = shedding.Options
	// Outcome is a configured shedding policy.
	Outcome = shedding.Outcome
)

// The four strategies of the paper's evaluation.
const (
	StrategyLira         = shedding.Lira
	StrategyLiraGrid     = shedding.LiraGrid
	StrategyUniformDelta = shedding.UniformDelta
	StrategyRandomDrop   = shedding.RandomDrop
)

// Strategies lists every strategy in the paper's comparison order.
func Strategies() []Strategy { return shedding.Kinds() }

// Configure computes the shedding policy of the given kind at throttle
// fraction z.
func Configure(kind Strategy, s *Server, z float64, opts StrategyOptions) (*Outcome, error) {
	return shedding.Configure(kind, s, z, opts)
}

// Pluggable control-plane policies. The canonical registry
// (controlplane) is the single source of the comparison order: both
// Strategies and PolicyNames derive from it.
type (
	// Policy is a pluggable partition/assign strategy for the control
	// plane; post-paper policies (e.g. "hysteresis") implement it.
	Policy = controlplane.Policy
	// PolicyRegistration is one canonical-registry row: name,
	// constructor, and the legacy strategy it backs (if any).
	PolicyRegistration = controlplane.Registration
)

// PolicyCatalog lists every canonical-registry row in comparison order.
func PolicyCatalog() []PolicyRegistration { return controlplane.Registered() }

// PolicyNames lists every registered policy name in comparison order.
func PolicyNames() []string { return controlplane.RegisteredNames() }

// NewPolicy constructs a fresh registered policy by name. Policies may
// be stateful; construct one instance per concurrent run.
func NewPolicy(name string) (Policy, bool) { return controlplane.NewPolicy(name) }

// ConfigurePolicy computes the shedding outcome for any registry policy
// at throttle fraction z — the generalization of Configure to policies
// with no legacy Strategy counterpart.
func ConfigurePolicy(pol Policy, s *Server, z float64, opts StrategyOptions) (*Outcome, error) {
	return shedding.ConfigurePolicy(pol, s, z, opts)
}

// Simulation substrate.
type (
	// RoadNetwork is a synthetic hierarchical road network.
	RoadNetwork = roadnet.Network
	// RoadConfig parameterizes network generation.
	RoadConfig = roadnet.Config
	// TraceSource streams car positions over a road network.
	TraceSource = trace.Source
	// TraceConfig parameterizes a trace.
	TraceConfig = trace.Config
	// QueryConfig parameterizes CQ workload generation.
	QueryConfig = workload.QueryConfig
	// Distribution places query centers relative to the node density.
	Distribution = workload.Distribution
)

// Query placement distributions (§4.2).
const (
	Proportional = workload.Proportional
	Inverse      = workload.Inverse
	Random       = workload.Random
)

// GenerateRoadNetwork builds a synthetic road network.
func GenerateRoadNetwork(cfg RoadConfig) *RoadNetwork { return roadnet.Generate(cfg) }

// DefaultRoadConfig returns the ≈200 km² network of the experiments.
func DefaultRoadConfig() RoadConfig { return roadnet.DefaultConfig() }

// NewTraceSource returns a streaming car-trace source.
func NewTraceSource(net *RoadNetwork, cfg TraceConfig) *TraceSource {
	return trace.NewSource(net, cfg)
}

// GenerateQueries builds range CQs over the space.
func GenerateQueries(space Rect, nodePositions []Point, cfg QueryConfig) ([]Rect, error) {
	return workload.GenerateQueries(space, nodePositions, cfg)
}

// Scenario catalog and capacity planning (see SCENARIOS.md and
// DESIGN.md §5j).
type (
	// Scenario is a named, seeded, byte-reproducible overload scenario.
	Scenario = workload.Scenario
	// ScenarioSpec is a catalog entry: name, description, constructor.
	ScenarioSpec = workload.ScenarioSpec
	// LoadEnvelope is a piece-wise-linear offered-rate envelope.
	LoadEnvelope = workload.Envelope
	// LoadPhase is one linear segment of a LoadEnvelope.
	LoadPhase = workload.Phase
	// PlanConfig parameterizes a capacity-planning sweep.
	PlanConfig = plan.Config
	// PlanSLO is the objective a plan must meet: p99 modeled Evaluate
	// latency, query-weighted inaccuracy, and maximum admission rung.
	PlanSLO = plan.SLO
	// PlanReport is the sweep's full result (the BENCH_PR9 artifact).
	PlanReport = plan.Report
	// PlanCombo is one (K, z-clamp, policy) cell with its worst case.
	PlanCombo = plan.Combo
	// ScenarioOutcome is one scenario simulated under one combo.
	ScenarioOutcome = plan.Outcome
)

// ScenarioCatalog lists every registered scenario, sorted by name.
func ScenarioCatalog() []ScenarioSpec { return workload.Catalog() }

// BuildScenario constructs a catalog scenario by name.
func BuildScenario(name string, space Rect, nodes int, rate float64, seed uint64) (Scenario, error) {
	return workload.BuildScenario(name, space, nodes, rate, seed)
}

// RampHoldDecay returns the canonical flash-crowd envelope: base →
// peak over ramp ticks, hold, then decay back to base.
func RampHoldDecay(base, peak float64, ramp, hold, decay int) LoadEnvelope {
	return workload.RampHoldDecay(base, peak, ramp, hold, decay)
}

// PlanCapacity sweeps K × z-clamp × policy across the scenario catalog
// and recommends the cheapest configuration meeting cfg.Objective; the
// recommendation is re-simulated before it is reported (Report.Verified).
func PlanCapacity(cfg PlanConfig) (*PlanReport, error) { return plan.Plan(cfg) }

// Measured-error planning (liraplan -measured).
type (
	// MeasuredPlanConfig parameterizes a measured-error planning sweep.
	MeasuredPlanConfig = plan.MeasuredPlanConfig
	// MeasuredSLO bounds measured E^C/E^P instead of modeled inaccuracy.
	MeasuredSLO = plan.MeasuredSLO
	// MeasuredPlanReport is the measured sweep's full result.
	MeasuredPlanReport = plan.MeasuredReport
)

// PlanMeasured sweeps throttle fraction × policy on measured error and
// recommends the cheapest combo whose measured E^C/E^P meet the SLO on
// every workload, replay-verified like PlanCapacity's recommendation.
func PlanMeasured(cfg MeasuredPlanConfig) (*MeasuredPlanReport, error) {
	return plan.PlanMeasured(cfg)
}

// Historic/snapshot query support and the road-network motion model.
type (
	// HistoryStore retains motion reports for snapshot and historic
	// queries — the workload the fairness threshold Δ⇔ serves.
	HistoryStore = history.Store
	// RoutePredictor extrapolates road-network motion reports (the
	// "advanced" model of the paper's reference [2]).
	RoutePredictor = routemodel.Predictor
	// RouteReckoner is the client-side suppression driver for the route
	// model.
	RouteReckoner = routemodel.Reckoner
	// RouteReport is the route model's report parameter set.
	RouteReport = routemodel.Report
)

// NewHistoryStore returns a report history for n nodes with at most
// perNodeCap retained reports each (0 = unbounded).
func NewHistoryStore(n, perNodeCap int) (*HistoryStore, error) {
	return history.NewStore(n, perNodeCap)
}

// NewRoutePredictor returns a road-network motion-model predictor.
func NewRoutePredictor(net *RoadNetwork) *RoutePredictor { return routemodel.NewPredictor(net) }

// NewRouteReckoner returns a route-model reckoner using pred.
func NewRouteReckoner(pred *RoutePredictor) *RouteReckoner { return routemodel.NewReckoner(pred) }

// Network deployment: the three-layer architecture over TCP with the
// §4.3.2 binary wire formats.
type (
	// NetServer hosts the CQ server and logical base stations behind a
	// TCP listener.
	NetServer = netsvc.Server
	// NetServerConfig parameterizes a NetServer.
	NetServerConfig = netsvc.ServerConfig
	// NetNode is a layer-3 mobile-node client.
	NetNode = netsvc.NodeClient
	// NetNodeConfig parameterizes a NetNode's fault tolerance
	// (heartbeats, deadlines, reconnect backoff).
	NetNodeConfig = netsvc.NodeConfig
	// NetQuery is a continual-query subscriber client.
	NetQuery = netsvc.QueryClient
	// NetQueryConfig parameterizes a NetQuery's fault tolerance.
	NetQueryConfig = netsvc.QueryConfig
	// NetCounters is the degradation accounting shared by servers and
	// clients: disconnects, reconnects, deadline trips, shed frames.
	NetCounters = metrics.NetCounters
	// FaultConfig sets per-frame fault probabilities for a FaultFabric.
	FaultConfig = faultnet.Config
	// FaultFabric injects deterministic, seeded network faults (drop,
	// delay, duplication, corruption, resets, partitions) for chaos runs.
	FaultFabric = faultnet.Fabric
)

// ListenAndServe starts a LIRA network server on addr.
func ListenAndServe(addr string, cfg NetServerConfig) (*NetServer, error) {
	return netsvc.Listen(addr, cfg)
}

// DialNode connects a mobile node to a network server.
func DialNode(addr string, id uint32, pos Point, fallbackDelta float64) (*NetNode, error) {
	return netsvc.DialNode(addr, id, pos, fallbackDelta)
}

// DialQuery connects a continual-query subscriber to a network server.
func DialQuery(addr string, buffer int) (*NetQuery, error) {
	return netsvc.DialQuery(addr, buffer)
}

// DialNodeConfig connects a mobile node with explicit fault-tolerance
// parameters.
func DialNodeConfig(addr string, cfg NetNodeConfig) (*NetNode, error) {
	return netsvc.DialNodeConfig(addr, cfg)
}

// DialQueryConfig connects a query subscriber with explicit
// fault-tolerance parameters.
func DialQueryConfig(addr string, cfg NetQueryConfig) (*NetQuery, error) {
	return netsvc.DialQueryConfig(addr, cfg)
}

// NewFaultFabric returns a deterministic fault-injection fabric: wrap
// dials and listeners in it to chaos-test a deployment reproducibly.
func NewFaultFabric(seed uint64, cfg FaultConfig) *FaultFabric {
	return faultnet.New(seed, cfg)
}

// Telemetry: passive metric registry, decision journal, and HTTP
// introspection for the shedding pipeline (see DESIGN.md §5d).
type (
	// TelemetryHub bundles a metric registry, decision journal, and the
	// net-layer counter bridge; attach one via ServerConfig.Telemetry,
	// NetServerConfig.Telemetry, or RunConfig.Telemetry.
	TelemetryHub = telemetry.Hub
	// MetricRegistry holds named counters, gauges, histograms, and period
	// series behind lock-cheap atomic operations.
	MetricRegistry = telemetry.Registry
	// DecisionJournal is the bounded ring of control-loop decision
	// records, optionally streamed to a JSONL sink.
	DecisionJournal = telemetry.Journal
	// DecisionRecord is one journaled decision (THROTLOOP observation,
	// GRIDREDUCE repartition, GREEDYINCREMENT assignment, or a network
	// degradation event).
	DecisionRecord = telemetry.Record
	// Introspection is the /debug/lira state snapshot of a NetServer.
	Introspection = netsvc.Introspection
)

// NewTelemetryHub returns a hub retaining the last journalCap decision
// records (<= 0 selects the default capacity).
func NewTelemetryHub(journalCap int) *TelemetryHub { return telemetry.NewHub(journalCap) }

// NewTelemetryMux returns an http.Handler serving /metrics (Prometheus
// text format) and /debug/lira (JSON snapshot); state supplies the
// pipeline view (e.g. NetServer.Introspect), and enablePprof adds the
// net/http/pprof handlers.
func NewTelemetryMux(h *TelemetryHub, state func() any, enablePprof bool) *http.ServeMux {
	return telemetry.NewMux(h, state, enablePprof)
}

// Metrics and experiments.
type (
	// Summary holds the §4.1 accuracy metrics of one run.
	Summary = metrics.Summary
	// Env is a shared experiment environment.
	Env = experiment.Env
	// EnvConfig parameterizes an Env.
	EnvConfig = experiment.EnvConfig
	// RunConfig parameterizes one simulation run.
	RunConfig = experiment.RunConfig
	// RunResult summarizes one run.
	RunResult = experiment.Result
	// Sweep bundles the parameter sweeps behind the paper's figures.
	Sweep = experiment.Sweep
	// FigureResult is one reproduced table or figure.
	FigureResult = experiment.Figure
	// MeasuredConfig parameterizes a measured policy comparison.
	MeasuredConfig = experiment.MeasuredConfig
	// MeasuredCell is one (workload, z, policy) measured-error cell.
	MeasuredCell = experiment.MeasuredCell
	// MeasuredComparison is the full measured grid.
	MeasuredComparison = experiment.MeasuredComparison
)

// Measure runs the §4-style measured policy comparison: one full
// reference-vs-candidate simulation per (workload, z, policy) cell.
func Measure(env *Env, cfg MeasuredConfig) (*MeasuredComparison, error) {
	return experiment.Measure(env, cfg)
}

// NewEnv generates the road network, trace source, and calibrated f(Δ).
func NewEnv(cfg EnvConfig) (*Env, error) { return experiment.NewEnv(cfg) }

// DefaultEnvConfig returns the paper-scale environment.
func DefaultEnvConfig() EnvConfig { return experiment.DefaultEnvConfig() }

// DefaultRunConfig returns the paper's Table 2 defaults.
func DefaultRunConfig() RunConfig { return experiment.DefaultRunConfig() }

// DefaultSweep mirrors the paper's parameter ranges; QuickSweep trims them
// for tests and benchmarks.
func DefaultSweep() Sweep { return experiment.DefaultSweep() }

// QuickSweep returns a trimmed sweep based on the given run configuration.
func QuickSweep(base RunConfig) Sweep { return experiment.QuickSweep(base) }

// Run executes one simulation against env.
func Run(env *Env, cfg RunConfig) (*RunResult, error) { return experiment.Run(env, cfg) }

// The per-experiment reproduction entry points, one per table or figure of
// the paper's evaluation. See EXPERIMENTS.md for the full index.

// Figure1 regenerates the update-reduction curve f(Δ).
func Figure1(env *Env) *FigureResult { return experiment.Figure1(env) }

// Figure3 regenerates the (α,l)-partitioning illustration.
func Figure3(env *Env, cfg RunConfig) (*FigureResult, *Partitioning, error) {
	return experiment.Figure3(env, cfg)
}

// Figures4and5 regenerates the throttle-fraction sweeps (position and
// containment error, Proportional queries).
func Figures4and5(env *Env, sw Sweep) (*FigureResult, *FigureResult, error) {
	return experiment.Figures4and5(env, sw)
}

// Figure6or7 regenerates the containment-error sweep for the Inverse or
// Random query distribution.
func Figure6or7(env *Env, sw Sweep, d Distribution) (*FigureResult, error) {
	return experiment.Figure6or7(env, sw, d)
}

// Figure8 regenerates the Lira-Grid-vs-LIRA region-count sweep.
func Figure8(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Figure8(env, sw) }

// Figure9 regenerates LIRA's error-vs-region-count sweep.
func Figure9(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Figure9(env, sw) }

// Figure10 regenerates the fairness metrics sweep.
func Figure10(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Figure10(env, sw) }

// Figure11 regenerates the position-error-vs-fairness sweep.
func Figure11(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Figure11(env, sw) }

// Figure12 regenerates the query-to-node-ratio sensitivity sweep.
func Figure12(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Figure12(env, sw) }

// Figure13 regenerates the query side-length sweep.
func Figure13(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Figure13(env, sw) }

// Figure14 regenerates the server-side configuration cost table.
func Figure14(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Figure14(env, sw) }

// Table3 regenerates the shedding-regions-per-base-station table.
func Table3(env *Env, sw Sweep) (*FigureResult, error) { return experiment.Table3(env, sw) }

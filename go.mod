module lira

go 1.22

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), one benchmark per experiment. Each iteration computes
// the full experiment at a reduced scale (the cmd/lirabench tool runs the
// larger sweeps); key reproduced quantities are attached as custom
// benchmark metrics so `go test -bench` output doubles as a summary of the
// reproduction.
package lira_test

import (
	"sync"
	"testing"

	"lira"
)

var (
	benchOnce sync.Once
	benchEnv  *lira.Env
	benchErr  error
)

// benchSetup builds the shared benchmark environment once: a 6 km × 6 km
// network with 1 200 nodes, small enough that every figure regenerates in
// seconds.
func benchSetup(b *testing.B) *lira.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := lira.DefaultEnvConfig()
		cfg.Net.Side = 6000
		cfg.Net.GridStep = 300
		cfg.Net.Centers = 2
		cfg.Net.CenterRadius = 1200
		cfg.Nodes = 1200
		cfg.CalibNodes = 400
		cfg.CalibTicks = 120
		benchEnv, benchErr = lira.NewEnv(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

func benchSweep() lira.Sweep {
	base := lira.DefaultRunConfig()
	base.L = 49
	base.WarmupTicks = 60
	base.DurationTicks = 300
	base.EvalEvery = 30
	sw := lira.QuickSweep(base)
	sw.Zs = []float64{0.75, 0.5, 0.3}
	sw.Ls = []int{13, 49, 100}
	sw.Fairness = []float64{10, 50, 95}
	sw.FairnessZs = []float64{0.5, 0.75}
	sw.Ws = []float64{500, 1000, 2000}
	sw.CostLs = []int{13, 49, 250}
	sw.CostAlphas = []int{64, 128}
	sw.Radii = []float64{750, 1500, 3000}
	return sw
}

// BenchmarkFig01UpdateReduction regenerates Figure 1: the update reduction
// factor f(Δ) measured from the calibrated trace.
func BenchmarkFig01UpdateReduction(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	var tail float64
	for i := 0; i < b.N; i++ {
		f := lira.Figure1(env)
		tail = f.Rows[len(f.Rows)-1][1]
	}
	b.ReportMetric(tail, "f(Δ⊣)")
}

// BenchmarkFig03Partitioning regenerates Figure 3: the (α,l)-partitioning
// produced by GRIDREDUCE over the warmed statistics grid.
func BenchmarkFig03Partitioning(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	b.ResetTimer()
	var regions int
	for i := 0; i < b.N; i++ {
		_, p, err := lira.Figure3(env, sw.Base)
		if err != nil {
			b.Fatal(err)
		}
		regions = len(p.Regions)
	}
	b.ReportMetric(float64(regions), "regions")
}

// BenchmarkFig04PositionErrorVsZ and BenchmarkFig05ContainmentErrorVsZ
// regenerate the throttle-fraction sweep with all four strategies under
// the Proportional query distribution.
func BenchmarkFig04PositionErrorVsZ(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Zs = []float64{0.5}
	b.ResetTimer()
	var relRandomDrop float64
	for i := 0; i < b.N; i++ {
		f4, _, err := lira.Figures4and5(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		relRandomDrop = f4.Rows[0][5]
	}
	b.ReportMetric(relRandomDrop, "relEP(rdrop/lira)@z=0.5")
}

func BenchmarkFig05ContainmentErrorVsZ(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Zs = []float64{0.5}
	b.ResetTimer()
	var relRandomDrop float64
	for i := 0; i < b.N; i++ {
		_, f5, err := lira.Figures4and5(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		relRandomDrop = f5.Rows[0][5]
	}
	b.ReportMetric(relRandomDrop, "relEC(rdrop/lira)@z=0.5")
}

// BenchmarkFig06InverseDistribution and BenchmarkFig07RandomDistribution
// regenerate the containment-error sweeps under the other two query
// distributions.
func BenchmarkFig06InverseDistribution(b *testing.B) {
	benchDistribution(b, lira.Inverse)
}

func BenchmarkFig07RandomDistribution(b *testing.B) {
	benchDistribution(b, lira.Random)
}

func benchDistribution(b *testing.B, d lira.Distribution) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Zs = []float64{0.5}
	b.ResetTimer()
	var relUniform float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure6or7(env, sw, d)
		if err != nil {
			b.Fatal(err)
		}
		relUniform = f.Rows[0][6]
	}
	b.ReportMetric(relUniform, "relEC(unif/lira)@z=0.5")
}

// BenchmarkFig08LiraGridVsLira regenerates the Lira-Grid ablation sweep
// over the number of shedding regions.
func BenchmarkFig08LiraGridVsLira(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Ls = []int{49}
	b.ResetTimer()
	var rel float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure8(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		rel = f.Rows[0][1]
	}
	b.ReportMetric(rel, "relEC(lgrid/lira)@l=49")
}

// BenchmarkFig09ErrorVsRegions regenerates LIRA's error as a function of
// the region count for several throttle fractions.
func BenchmarkFig09ErrorVsRegions(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Ls = []int{13, 100}
	sw.FairnessZs = []float64{0.5}
	b.ResetTimer()
	var improvement float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure9(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		if f.Rows[len(f.Rows)-1][1] > 0 {
			improvement = f.Rows[0][1] / f.Rows[len(f.Rows)-1][1]
		}
	}
	b.ReportMetric(improvement, "EC(l=13)/EC(l=100)")
}

// BenchmarkFig10Fairness regenerates the fairness metrics sweep at
// z = 0.75.
func BenchmarkFig10Fairness(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Fairness = []float64{10, 95}
	b.ResetTimer()
	var devRatio float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure10(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		last := f.Rows[len(f.Rows)-1]
		if last[2] > 0 {
			devRatio = last[1] / last[2] // Dev_lira / Dev_unif at loose fairness
		}
	}
	b.ReportMetric(devRatio, "Dev(lira)/Dev(unif)")
}

// BenchmarkFig11FairnessVsZ regenerates the position-error-vs-fairness
// sweep.
func BenchmarkFig11FairnessVsZ(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Fairness = []float64{10, 95}
	sw.FairnessZs = []float64{0.5}
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure11(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		if f.Rows[len(f.Rows)-1][1] > 0 {
			spread = f.Rows[0][1] / f.Rows[len(f.Rows)-1][1]
		}
	}
	b.ReportMetric(spread, "EP(tight)/EP(loose)")
}

// BenchmarkFig12QueryNodeRatio regenerates the m/n sensitivity sweep.
func BenchmarkFig12QueryNodeRatio(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	sw.Ls = []int{49}
	b.ResetTimer()
	var relSparse float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure12(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		relSparse = f.Rows[0][1] // uniform/lira at m/n = 0.01
	}
	b.ReportMetric(relSparse, "relEC(unif/lira)@m/n=0.01")
}

// BenchmarkFig13QuerySideLength regenerates the query side-length sweep.
func BenchmarkFig13QuerySideLength(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	b.ResetTimer()
	var epGrowth float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure13(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
		if first[1] > 0 {
			epGrowth = last[1] / first[1]
		}
	}
	b.ReportMetric(epGrowth, "EP(w=2000)/EP(w=500)")
}

// BenchmarkFig14AdaptationCost regenerates the server-side configuration
// cost table (GRIDREDUCE + GREEDYINCREMENT wall clock).
func BenchmarkFig14AdaptationCost(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	b.ResetTimer()
	var msAt250 float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Figure14(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		last := f.Rows[len(f.Rows)-1]
		msAt250 = last[len(last)-1]
	}
	b.ReportMetric(msAt250, "ms@l=250")
}

// BenchmarkTable3MessagingCost regenerates the shedding-regions-per-base-
// station table.
func BenchmarkTable3MessagingCost(b *testing.B) {
	env := benchSetup(b)
	sw := benchSweep()
	b.ResetTimer()
	var regionsAtLargest float64
	for i := 0; i < b.N; i++ {
		f, err := lira.Table3(env, sw)
		if err != nil {
			b.Fatal(err)
		}
		regionsAtLargest = f.Rows[len(f.Rows)-1][1]
	}
	b.ReportMetric(regionsAtLargest, "regions/station@maxR")
}

// BenchmarkCoreAdaptation measures one bare adaptation cycle (the paper's
// "lightweight" claim) at the default scale, without the figure plumbing.
func BenchmarkCoreAdaptation(b *testing.B) {
	env := benchSetup(b)
	srv, err := lira.NewServer(lira.ServerConfig{
		Space: env.Space,
		Nodes: env.Cfg.Nodes,
		L:     250,
		Curve: env.Curve,
	})
	if err != nil {
		b.Fatal(err)
	}
	env.Src.Reset()
	speeds := make([]float64, env.Cfg.Nodes)
	for t := 0; t < 60; t++ {
		env.Src.Step(1)
	}
	for i, v := range env.Src.Velocities() {
		speeds[i] = v.Len()
	}
	srv.ObserveStatistics(env.Src.Positions(), speeds)
	qs, err := lira.GenerateQueries(env.Space, env.Src.Positions(), lira.QueryConfig{
		Count: 12, SideLength: 1000, Distribution: lira.Proportional, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv.RegisterQueries(qs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Adapt(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

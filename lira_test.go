package lira_test

import (
	"math"
	"testing"

	"lira"
)

// facadeEnv builds a very small environment for public-API tests.
func facadeEnv(t *testing.T) *lira.Env {
	t.Helper()
	cfg := lira.DefaultEnvConfig()
	cfg.Net.Side = 4000
	cfg.Net.GridStep = 250
	cfg.Nodes = 500
	cfg.CalibNodes = 200
	cfg.CalibTicks = 60
	env, err := lira.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestPublicGeometry(t *testing.T) {
	r := lira.NewRect(10, 10, 0, 0)
	if r.MinX != 0 || r.MaxX != 10 {
		t.Errorf("NewRect = %v", r)
	}
	sq := lira.Square(lira.Point{X: 5, Y: 5}, 4)
	if sq.Area() != 16 {
		t.Errorf("Square area = %v", sq.Area())
	}
}

func TestPublicCurve(t *testing.T) {
	c := lira.Hyperbolic(5, 100, 95)
	if c.Eval(5) != 1 {
		t.Error("f(Δ⊢) != 1")
	}
	if _, err := lira.NewCurve(5, 100, []float64{100, 50, 20}); err != nil {
		t.Errorf("NewCurve: %v", err)
	}
	if got := lira.AlphaFor(250, 10); got != 128 {
		t.Errorf("AlphaFor = %d", got)
	}
}

func TestPublicEndToEnd(t *testing.T) {
	env := facadeEnv(t)
	cfg := lira.DefaultRunConfig()
	cfg.L = 22
	cfg.WarmupTicks = 40
	cfg.DurationTicks = 150
	res, err := lira.Run(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != lira.StrategyLira {
		t.Errorf("default strategy = %v", res.Strategy)
	}
	if res.SentUpdates == 0 || res.ReferenceUpdates == 0 {
		t.Error("no updates flowed")
	}
}

func TestPublicServerLayerComposition(t *testing.T) {
	// Drive the three layers by hand through the facade, as an embedding
	// application would.
	net := lira.GenerateRoadNetwork(lira.RoadConfig{Side: 3000, GridStep: 250, Seed: 5})
	const n = 200
	src := lira.NewTraceSource(net, lira.TraceConfig{N: n, Seed: 6})
	curve := lira.Hyperbolic(5, 100, 19)

	srv, err := lira.NewServer(lira.ServerConfig{Space: net.Space, Nodes: n, L: 13, Curve: curve})
	if err != nil {
		t.Fatal(err)
	}
	speeds := make([]float64, n)
	for tick := 0; tick < 30; tick++ {
		src.Step(1)
	}
	for i, v := range src.Velocities() {
		speeds[i] = v.Len()
	}
	srv.ObserveStatistics(src.Positions(), speeds)
	qs, err := lira.GenerateQueries(net.Space, src.Positions(), lira.QueryConfig{
		Count: 5, SideLength: 500, Distribution: lira.Proportional, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterQueries(qs)

	out, err := lira.Configure(lira.StrategyLira, srv, 0.6, lira.StrategyOptions{
		L: 13, Curve: curve, Fairness: 95,
	})
	if err != nil {
		t.Fatal(err)
	}
	stations, err := lira.PlaceUniform(net.Space, 1200)
	if err != nil {
		t.Fatal(err)
	}
	deploy, err := lira.NewDeployment(stations, out.Partitioning, out.Deltas)
	if err != nil {
		t.Fatal(err)
	}
	if deploy.MeanRegionsPerStation() <= 0 {
		t.Error("no regions deployed")
	}

	node := lira.NewNode(0)
	p0 := src.Positions()[0]
	st := lira.StationFor(stations, p0)
	if st < 0 {
		t.Fatal("node uncovered")
	}
	node.Install(st, lira.CompileAssignment(deploy.Assignments[st]))
	rep := node.Start(p0, src.Velocities()[0], 30)
	srv.Apply(lira.Update{Node: 0, Report: rep})
	if got, ok := srv.PredictedPosition(0, 30); !ok || got.Dist(p0) > 1e-9 {
		t.Errorf("PredictedPosition = (%v, %v)", got, ok)
	}
	d := node.Delta(p0, curve.MinDelta())
	if d < 5 || d > 100 {
		t.Errorf("node Δ = %v outside range", d)
	}
}

func TestPublicThrotloop(t *testing.T) {
	c, err := lira.NewThrotloop(100)
	if err != nil {
		t.Fatal(err)
	}
	z := c.Observe(1.98)
	if math.Abs(z-0.5) > 1e-9 {
		t.Errorf("z = %v", z)
	}
}

func TestPublicSetThrottlers(t *testing.T) {
	curve := lira.Hyperbolic(5, 100, 95)
	res, err := lira.SetThrottlers([]lira.RegionStat{
		{N: 100, M: 0, S: 10},
		{N: 100, M: 5, S: 10},
	}, curve, lira.ThrottlerOptions{Z: 0.6, Fairness: 95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deltas[0] <= res.Deltas[1] {
		t.Errorf("query-free region should shed more: %v", res.Deltas)
	}
}

func TestPublicStrategies(t *testing.T) {
	ks := lira.Strategies()
	if len(ks) != 4 {
		t.Fatalf("Strategies = %v", ks)
	}
	if lira.StrategyLira.String() != "lira" {
		t.Error("strategy naming broken")
	}
	if lira.Proportional.String() != "proportional" {
		t.Error("distribution naming broken")
	}
}

func TestPublicFigureEntryPoints(t *testing.T) {
	env := facadeEnv(t)
	f := lira.Figure1(env)
	if f.ID != "fig1" || len(f.Rows) == 0 {
		t.Errorf("Figure1: %+v", f)
	}
	base := lira.DefaultRunConfig()
	base.L = 13
	base.WarmupTicks = 30
	base.DurationTicks = 90
	_, p, err := lira.Figure3(env, base)
	if err != nil || len(p.Regions) == 0 {
		t.Fatalf("Figure3: %v", err)
	}
	sw := lira.QuickSweep(base)
	sw.Radii = []float64{800, 1600}
	t3, err := lira.Table3(env, sw)
	if err != nil || len(t3.Rows) != 2 {
		t.Fatalf("Table3: %v", err)
	}
}

package main

import (
	"strings"
	"testing"

	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/partition"
	"lira/internal/statgrid"
)

func TestDensityMap(t *testing.T) {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	out := densityMap(space, []geo.Point{{X: 10, Y: 10}, {X: 10, Y: 12}, {X: 900, Y: 900}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != canvasH {
		t.Fatalf("canvas height %d, want %d", len(lines), canvasH)
	}
	for i, l := range lines {
		if len(l) != canvasW {
			t.Fatalf("line %d width %d, want %d", i, len(l), canvasW)
		}
	}
	// The dense SW corner renders darker (later shade) than empty space;
	// north is up, so the SW corner is the bottom-left.
	bottom := lines[len(lines)-1]
	if bottom[0] == ' ' {
		t.Error("SW density not rendered")
	}
	if strings.Count(out, " ") == 0 {
		t.Error("empty space should render blank")
	}
	// Points outside the space must not panic or render.
	_ = densityMap(space, []geo.Point{{X: -50, Y: 5000}})
}

func TestRegionMap(t *testing.T) {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	g := statgrid.New(space, 8)
	g.Observe([]geo.Point{{X: 100, Y: 100}}, []float64{10})
	p, err := partition.GridReduce(g, partition.Config{L: 4, Z: 0.5, Curve: fmodel.Hyperbolic(5, 100, 19)})
	if err != nil {
		t.Fatal(err)
	}
	out := regionMap(space, p)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != canvasH {
		t.Fatalf("canvas height %d", len(lines))
	}
	distinct := map[byte]bool{}
	for _, l := range lines {
		for i := 0; i < len(l); i++ {
			distinct[l[i]] = true
		}
	}
	if len(distinct) != len(p.Regions) {
		t.Errorf("rendered %d distinct letters for %d regions", len(distinct), len(p.Regions))
	}
	if distinct['?'] {
		t.Error("unlocated cells rendered")
	}
}

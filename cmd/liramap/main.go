// Command liramap renders the paper's Figure 3 as ASCII art: the node
// density of the monitored space, the query density, and the
// (α,l)-partitioning GRIDREDUCE produces over them — large shedding
// regions where nothing interesting happens, fine regions where node and
// query density are heterogeneous.
//
// Usage:
//
//	liramap -l 100 -nodes 3000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lira/internal/experiment"
	"lira/internal/geo"
	"lira/internal/partition"
	"lira/internal/roadnet"
	"lira/internal/workload"
)

const (
	canvasW = 72
	canvasH = 36
)

func main() {
	var (
		l     = flag.Int("l", 100, "number of shedding regions")
		nodes = flag.Int("nodes", 3000, "mobile node count")
		z     = flag.Float64("z", 0.5, "throttle fraction")
		side  = flag.Float64("side", 7000, "space side length (meters)")
		seed  = flag.Uint64("seed", 1, "generation seed")
		dist  = flag.String("dist", "proportional", "query distribution")
	)
	flag.Parse()

	netCfg := roadnet.DefaultConfig()
	netCfg.Side = *side
	netCfg.GridStep = *side / 24
	netCfg.Seed = *seed
	envCfg := experiment.DefaultEnvConfig()
	envCfg.Net = netCfg
	envCfg.Nodes = *nodes
	envCfg.TraceSeed = *seed + 1
	envCfg.CalibNodes = 500
	envCfg.CalibTicks = 120
	env, err := experiment.NewEnv(envCfg)
	if err != nil {
		fatal(err)
	}

	cfg := experiment.DefaultRunConfig()
	cfg.L = *l
	cfg.Z = *z
	for _, d := range []workload.Distribution{workload.Proportional, workload.Inverse, workload.Random} {
		if d.String() == *dist {
			cfg.QueryDist = d
		}
	}

	// Warm the trace for a node snapshot and queries.
	env.Src.Reset()
	for t := 0; t < cfg.WarmupTicks; t++ {
		env.Src.Step(1)
	}
	positions := env.Src.Positions()
	queries, err := workload.GenerateQueries(env.Space, positions, workload.QueryConfig{
		Count:        int(cfg.MOverN * float64(*nodes)),
		SideLength:   cfg.QuerySide,
		Distribution: cfg.QueryDist,
		Seed:         cfg.Seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Println("mobile node distribution:")
	fmt.Print(densityMap(env.Space, positions))
	fmt.Println("\nquery distribution:")
	centers := make([]geo.Point, len(queries))
	for i, q := range queries {
		centers[i] = q.Center()
	}
	fmt.Print(densityMap(env.Space, centers))

	_, p, err := experiment.Figure3(env, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n(α,l)-partitioning (l = %d shedding regions; distinct letters = distinct regions):\n", len(p.Regions))
	fmt.Print(regionMap(env.Space, p))
}

// densityMap renders a point cloud as an ASCII heat map.
func densityMap(space geo.Rect, pts []geo.Point) string {
	shades := []byte(" .:-=+*#%@")
	counts := make([]int, canvasW*canvasH)
	max := 0
	for _, p := range pts {
		x := int((p.X - space.MinX) / space.Width() * canvasW)
		y := int((p.Y - space.MinY) / space.Height() * canvasH)
		if x < 0 || x >= canvasW || y < 0 || y >= canvasH {
			continue
		}
		counts[y*canvasW+x]++
		if counts[y*canvasW+x] > max {
			max = counts[y*canvasW+x]
		}
	}
	var b strings.Builder
	for y := canvasH - 1; y >= 0; y-- { // north up
		for x := 0; x < canvasW; x++ {
			c := counts[y*canvasW+x]
			idx := 0
			if max > 0 && c > 0 {
				idx = 1 + c*(len(shades)-2)/max
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// regionMap renders a partitioning: each sampled cell shows a letter
// derived from its region index, so region boundaries appear as letter
// changes.
func regionMap(space geo.Rect, p *partition.Partitioning) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	for y := canvasH - 1; y >= 0; y-- {
		for x := 0; x < canvasW; x++ {
			pt := geo.Point{
				X: space.MinX + (float64(x)+0.5)/canvasW*space.Width(),
				Y: space.MinY + (float64(y)+0.5)/canvasH*space.Height(),
			}
			idx := p.Locate(pt)
			if idx < 0 {
				b.WriteByte('?')
				continue
			}
			b.WriteByte(letters[idx%len(letters)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "liramap:", err)
	os.Exit(1)
}

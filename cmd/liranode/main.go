// Command liranode simulates a fleet of mobile nodes against a running
// lirad daemon: cars move over a synthetic road network in real (scaled)
// time, dead-reckon with the broadcast region throttlers, and report the
// resulting update volume. A query subscriber can be attached to watch a
// range query live.
//
// Usage:
//
//	liranode -server 127.0.0.1:7400 -nodes 500 -speedup 20 -duration 30s
//	liranode -server 127.0.0.1:7400 -watch "1000,1000,3000,3000"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lira/internal/geo"
	"lira/internal/netsvc"
	"lira/internal/roadnet"
	"lira/internal/trace"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:7400", "lirad address")
		nodes    = flag.Int("nodes", 500, "fleet size")
		side     = flag.Float64("side", 14142, "space side length (must match lirad)")
		speedup  = flag.Float64("speedup", 20, "simulated seconds per wall second")
		duration = flag.Duration("duration", 30*time.Second, "wall-clock run time")
		seed     = flag.Uint64("seed", 1, "trace seed")
		watch    = flag.String("watch", "", "register a query 'x0,y0,x1,y1' and print pushed results")
	)
	flag.Parse()

	if *watch != "" {
		watchQuery(*server, *watch, *duration)
		return
	}

	netCfg := roadnet.DefaultConfig()
	netCfg.Side = *side
	netCfg.GridStep = *side / 32
	netCfg.Seed = *seed
	net := roadnet.Generate(netCfg)
	src := trace.NewSource(net, trace.Config{N: *nodes, Seed: *seed + 1})

	clients := make([]*netsvc.NodeClient, *nodes)
	pos := src.Positions()
	for i := range clients {
		c, err := netsvc.DialNode(*server, uint32(i), pos[i], 5)
		if err != nil {
			fatal(fmt.Errorf("dial node %d: %w", i, err))
		}
		clients[i] = c
		defer c.Close()
	}
	fmt.Fprintf(os.Stderr, "liranode: %d nodes connected to %s\n", *nodes, *server)

	start := time.Now()
	tick := time.NewTicker(time.Duration(float64(time.Second) / *speedup))
	defer tick.Stop()
	simTime := float64(time.Now().UnixNano()) / 1e9
	var sent int64
	steps := 0
	for time.Since(start) < *duration {
		<-tick.C
		src.Step(1)
		simTime += 1
		steps++
		pos = src.Positions()
		vel := src.Velocities()
		for i, c := range clients {
			ok, err := c.Observe(pos[i], vel[i], simTime)
			if err != nil {
				fatal(fmt.Errorf("node %d observe: %w", i, err))
			}
			if ok {
				sent++
			}
		}
	}
	fmt.Printf("simulated %d s of motion for %d nodes: %d updates sent (%.3f per node-second)\n",
		steps, *nodes, sent, float64(sent)/float64(*nodes)/float64(steps))
}

func watchQuery(server, spec string, duration time.Duration) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		fatal(fmt.Errorf("watch spec %q: want x0,y0,x1,y1", spec))
	}
	var coords [4]float64
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &coords[i]); err != nil {
			fatal(fmt.Errorf("watch spec %q: %w", spec, err))
		}
	}
	q, err := netsvc.DialQuery(server, 8)
	if err != nil {
		fatal(err)
	}
	defer q.Close()
	id, err := q.Register(geo.NewRect(coords[0], coords[1], coords[2], coords[3]))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "liranode: watching query %d on %s\n", id, server)
	deadline := time.After(duration)
	for {
		select {
		case res, ok := <-q.Results():
			if !ok {
				return
			}
			fmt.Printf("query %d: %d nodes %v\n", res.ID, len(res.Nodes), res.Nodes)
		case <-deadline:
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "liranode:", err)
	os.Exit(1)
}

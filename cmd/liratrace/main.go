// Command liratrace generates a synthetic road network and car trace —
// the substitution for the paper's USGS/traffic-volume trace generator —
// and either summarizes it or dumps positions as CSV.
//
// Usage:
//
//	liratrace -summary                      # network + trace statistics
//	liratrace -csv -nodes 100 -ticks 60     # tick,node,x,y,speed rows
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"lira/internal/roadnet"
	"lira/internal/trace"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 1000, "number of cars")
		ticks   = flag.Int("ticks", 300, "simulation ticks (1 s each)")
		side    = flag.Float64("side", 14142, "space side length (meters)")
		seed    = flag.Uint64("seed", 1, "generation seed")
		csv     = flag.Bool("csv", false, "dump tick,node,x,y,speed CSV to stdout")
		summary = flag.Bool("summary", true, "print network and trace summary to stderr")
	)
	flag.Parse()

	netCfg := roadnet.DefaultConfig()
	netCfg.Side = *side
	netCfg.GridStep = *side / 32
	netCfg.Seed = *seed
	net := roadnet.Generate(netCfg)

	if *summary {
		s := net.Stats()
		fmt.Fprintf(os.Stderr, "road network: %d intersections, %d directed edges\n", s.Nodes, s.Edges)
		fmt.Fprintf(os.Stderr, "  expressway %.1f km, arterial %.1f km, collector %.1f km\n",
			s.ExpressKm, s.ArterialKm, s.CollectorKm)
	}

	src := trace.NewSource(net, trace.Config{N: *nodes, Seed: *seed + 1})
	var out *bufio.Writer
	if *csv {
		out = bufio.NewWriter(os.Stdout)
		defer out.Flush()
		fmt.Fprintln(out, "tick,node,x,y,speed")
	}

	var distSum float64
	prev := make([]float64, *nodes*2)
	snapshot := func() {
		for i, p := range src.Positions() {
			prev[2*i], prev[2*i+1] = p.X, p.Y
		}
	}
	snapshot()
	for tick := 0; tick < *ticks; tick++ {
		if *csv {
			for i, p := range src.Positions() {
				fmt.Fprintf(out, "%d,%d,%.1f,%.1f,%.1f\n", tick, i, p.X, p.Y, src.Speed(i))
			}
		}
		src.Step(1)
		for i, p := range src.Positions() {
			dx, dy := p.X-prev[2*i], p.Y-prev[2*i+1]
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			distSum += dx + dy // cheap L1 odometer for the summary
		}
		snapshot()
	}

	if *summary {
		fmt.Fprintf(os.Stderr, "trace: %d cars × %d s, ≈%.1f km total L1 distance traveled\n",
			*nodes, *ticks, distSum/1000)
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunWritesArtifactAndTable: a tiny grid produces the JSON artifact
// and a plan table, and a second identical invocation writes the same
// bytes.
func TestRunWritesArtifactAndTable(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "plan.json")
	invoke := func(path string) []byte {
		if err := run(120, 12, 0, 6000, 3, 13,
			"1,2", "1,0.5", "lira", "blackout,query-churn",
			5000, 12, "shed", path, true); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := invoke(out)
	b := invoke(filepath.Join(dir, "plan2.json"))
	if string(a) != string(b) {
		t.Fatal("identical invocations produced different artifacts")
	}
	if len(a) == 0 || a[len(a)-1] != '\n' {
		t.Fatal("artifact empty or missing trailing newline")
	}
}

// TestRunRejectsBadFlags: parse and validation errors surface as errors.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(120, 12, 0, 6000, 3, 13, "1,x", "1", "lira", "blackout",
		5000, 12, "shed", "", true); err == nil {
		t.Error("bad -ks accepted")
	}
	if err := run(120, 12, 0, 6000, 3, 13, "1", "1", "lira", "blackout",
		5000, 12, "meltdown", "", true); err == nil {
		t.Error("bad -slo-rung accepted")
	}
	if err := run(120, 12, 0, 6000, 3, 13, "1", "1", "lira", "no-such-scenario",
		5000, 12, "shed", "", true); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// Command liraplan is the deterministic capacity planner: given a fleet
// size, a baseline report rate, and an SLO, it sweeps shard count K ×
// throttle clamp z × controlplane policy across the named scenario
// catalog (SCENARIOS.md) and reports the cheapest configuration whose
// worst case still meets the SLO.
//
// Usage:
//
//	liraplan                                  # default grid, plan table on stdout
//	liraplan -nodes 2000 -rate 200 \
//	         -slo-p99ms 2500 -slo-inacc 8 -slo-rung warning
//	liraplan -json BENCH_PR9.json             # also write the JSON artifact
//	liraplan -scenarios blackout,query-churn  # restrict the catalog
//	liraplan -ks 1,2,4,8 -zclamps 1,0.7,0.4   # widen the grid
//
// Every run is a pure function of (seed, flags): the same invocation
// emits a byte-identical artifact, and the recommendation is re-simulated
// in-process before it is reported (the "verified" field).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lira/internal/plan"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 2000, "fleet size (mobile nodes)")
		rate    = flag.Float64("rate", 0, "baseline aggregate report rate, updates/tick (0 = nodes/10)")
		service = flag.Float64("service", 0, "per-shard drain capacity, updates/tick (0 = rate: one shard exactly keeps up with the baseline)")
		side    = flag.Float64("side", 6000, "monitored square side, meters")
		seed    = flag.Uint64("seed", 1, "scenario + thinning seed")
		regions = flag.Int("l", 13, "shedding-region count L")

		ks      = flag.String("ks", "1,2,4", "comma-separated shard counts to sweep")
		zclamps = flag.String("zclamps", "1,0.7,0.4", "comma-separated throttle clamps to sweep")
		pols    = flag.String("policies", "", "comma-separated controlplane policies (empty = all)")
		scens   = flag.String("scenarios", "", "comma-separated catalog scenarios (empty = all; see SCENARIOS.md)")

		sloP99   = flag.Float64("slo-p99ms", 2500, "SLO: p99 modeled Evaluate latency bound, ms")
		sloInacc = flag.Float64("slo-inacc", 8, "SLO: query-weighted mean inaccuracy bound, meters")
		sloRung  = flag.String("slo-rung", "warning", "SLO: maximum admission rung (healthy|warning|shed|critical)")

		jsonOut = flag.String("json", "", "write the BENCH_PR9 JSON artifact to this path")
		quiet   = flag.Bool("q", false, "suppress per-cell progress on stderr")
	)
	flag.Parse()
	if err := run(*nodes, *rate, *service, *side, *seed, *regions,
		*ks, *zclamps, *pols, *scens, *sloP99, *sloInacc, *sloRung, *jsonOut, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "liraplan:", err)
		os.Exit(1)
	}
}

func run(nodes int, rate, service, side float64, seed uint64, regions int,
	ks, zclamps, pols, scens string, sloP99, sloInacc float64, sloRung, jsonOut string, quiet bool) error {
	if rate <= 0 {
		rate = float64(nodes) / 10
		if rate < 1 {
			rate = 1
		}
	}
	rung, err := plan.RungFromName(sloRung)
	if err != nil {
		return err
	}
	shards, err := parseInts(ks)
	if err != nil {
		return fmt.Errorf("-ks: %w", err)
	}
	clamps, err := parseFloats(zclamps)
	if err != nil {
		return fmt.Errorf("-zclamps: %w", err)
	}
	cfg := plan.Config{
		Nodes:           nodes,
		Rate:            rate,
		ServicePerShard: service,
		SpaceSide:       side,
		Seed:            seed,
		L:               regions,
		Shards:          shards,
		ZClamps:         clamps,
		Policies:        splitList(pols),
		Scenarios:       splitList(scens),
		Objective:       plan.SLO{P99LatencyMS: sloP99, MaxInaccuracyM: sloInacc, MaxRung: rung},
	}
	if !quiet {
		cfg.Progress = func(done, total int, o *plan.Outcome) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d] K=%d z=%.2f %s %s        ",
				done, total, o.Shards, o.ZClamp, o.Policy, o.Scenario)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	rep, err := plan.Plan(cfg)
	if err != nil {
		return err
	}
	rep.Command = strings.Join(append([]string{"liraplan"}, os.Args[1:]...), " ")
	if jsonOut != "" {
		data, err := rep.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (feasible=%v verified=%v)\n", jsonOut, rep.Feasible, rep.Verified)
	}
	_, err = os.Stdout.WriteString(rep.Table())
	return err
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Command liraplan is the deterministic capacity planner: given a fleet
// size, a baseline report rate, and an SLO, it sweeps shard count K ×
// throttle clamp z × controlplane policy across the named scenario
// catalog (SCENARIOS.md) and reports the cheapest configuration whose
// worst case still meets the SLO.
//
// Usage:
//
//	liraplan                                  # default grid, plan table on stdout
//	liraplan -nodes 2000 -rate 200 \
//	         -slo-p99ms 2500 -slo-inacc 8 -slo-rung warning
//	liraplan -json BENCH_PR9.json             # also write the JSON artifact
//	liraplan -scenarios blackout,query-churn  # restrict the catalog
//	liraplan -ks 1,2,4,8 -zclamps 1,0.7,0.4   # widen the grid
//	liraplan -measured -slo-ec 0.02 -slo-ep 5 # SLO on measured E^C/E^P
//
// The default mode judges candidates against the closed-loop capacity
// model. With -measured, the SLO instead bounds the *measured* §4.1
// errors: every (z, policy) cell is one full reference-vs-candidate
// simulation (experiment.Measure) over the selected workloads, and the
// cheapest combo — z ascending, then policy in registry order — whose
// measured E^C/E^P meet the SLO everywhere is recommended.
//
// Every run is a pure function of (seed, flags): the same invocation
// emits a byte-identical artifact, and the recommendation is re-simulated
// in-process before it is reported (the "verified" field).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lira/internal/experiment"
	"lira/internal/plan"
	"lira/internal/roadnet"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 2000, "fleet size (mobile nodes)")
		rate    = flag.Float64("rate", 0, "baseline aggregate report rate, updates/tick (0 = nodes/10)")
		service = flag.Float64("service", 0, "per-shard drain capacity, updates/tick (0 = rate: one shard exactly keeps up with the baseline)")
		side    = flag.Float64("side", 6000, "monitored square side, meters")
		seed    = flag.Uint64("seed", 1, "scenario + thinning seed")
		regions = flag.Int("l", 13, "shedding-region count L")

		ks      = flag.String("ks", "1,2,4", "comma-separated shard counts to sweep")
		zclamps = flag.String("zclamps", "1,0.7,0.4", "comma-separated throttle clamps to sweep")
		pols    = flag.String("policies", "", "comma-separated controlplane policies (empty = all)")
		scens   = flag.String("scenarios", "", "comma-separated catalog scenarios (empty = all; see SCENARIOS.md)")

		sloP99   = flag.Float64("slo-p99ms", 2500, "SLO: p99 modeled Evaluate latency bound, ms")
		sloInacc = flag.Float64("slo-inacc", 8, "SLO: query-weighted mean inaccuracy bound, meters")
		sloRung  = flag.String("slo-rung", "warning", "SLO: maximum admission rung (healthy|warning|shed|critical)")

		measured = flag.Bool("measured", false, "measured mode: SLO bounds measured E^C/E^P from full reference-vs-candidate simulations instead of the capacity model")
		zs       = flag.String("zs", "0.3,0.5,0.7", "measured mode: comma-separated throttle fractions to sweep (cheapest = lowest first)")
		wls      = flag.String("workloads", "trace,blackout", "measured mode: comma-separated traffic sources (\"trace\" = road-network trace, rest from the scenario catalog)")
		ticks    = flag.Int("ticks", 90, "measured mode: measured ticks per cell")
		sloEC    = flag.Float64("slo-ec", 0.02, "measured mode SLO: mean containment error bound")
		sloEP    = flag.Float64("slo-ep", 5, "measured mode SLO: mean position error bound, meters")
		parallel = flag.Int("parallel", 0, "measured mode: grid workers (0 = GOMAXPROCS)")

		jsonOut = flag.String("json", "", "write the JSON artifact to this path")
		quiet   = flag.Bool("q", false, "suppress per-cell progress on stderr")
	)
	flag.Parse()
	if *measured {
		if err := runMeasured(*nodes, *side, *seed, *regions, *ticks, *parallel,
			*zs, *pols, *wls, *sloEC, *sloEP, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "liraplan:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*nodes, *rate, *service, *side, *seed, *regions,
		*ks, *zclamps, *pols, *scens, *sloP99, *sloInacc, *sloRung, *jsonOut, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "liraplan:", err)
		os.Exit(1)
	}
}

// runMeasured is the -measured mode: build a road-network experiment
// environment, sweep z × policy on measured error over the selected
// workloads, and report the cheapest SLO-feasible combo, replay-verified.
func runMeasured(nodes int, side float64, seed uint64, regions, ticks, parallel int,
	zsArg, pols, wlsArg string, sloEC, sloEP float64, jsonOut string) error {
	zvals, err := parseFloats(zsArg)
	if err != nil {
		return fmt.Errorf("-zs: %w", err)
	}
	var workloads []string
	for _, w := range splitList(wlsArg) {
		if w == "trace" {
			w = ""
		}
		workloads = append(workloads, w)
	}
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = side
	netCfg.GridStep = 400
	netCfg.Centers = 2
	netCfg.CenterRadius = side / 5
	netCfg.Seed = seed
	calib := 400
	if nodes < calib {
		calib = nodes
	}
	env, err := experiment.NewEnv(experiment.EnvConfig{
		Net:        netCfg,
		Nodes:      nodes,
		TraceSeed:  seed + 1,
		CalibNodes: calib,
		CalibTicks: 120,
	})
	if err != nil {
		return err
	}
	base := experiment.DefaultRunConfig()
	base.L = regions
	base.Seed = seed
	base.WarmupTicks = 40
	base.DurationTicks = ticks
	base.EvalEvery = 30
	base.ReAdaptEvery = 60
	rep, err := plan.PlanMeasured(plan.MeasuredPlanConfig{
		Env:       env,
		Base:      base,
		Zs:        zvals,
		Policies:  splitList(pols),
		Workloads: workloads,
		Objective: plan.MeasuredSLO{MaxEC: sloEC, MaxEPM: sloEP},
		Parallel:  parallel,
	})
	if err != nil {
		return err
	}
	rep.Command = strings.Join(append([]string{"liraplan"}, os.Args[1:]...), " ")
	if jsonOut != "" {
		data, err := rep.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (feasible=%v verified=%v)\n", jsonOut, rep.Feasible, rep.Verified)
	}
	_, err = os.Stdout.WriteString(rep.Table())
	return err
}

func run(nodes int, rate, service, side float64, seed uint64, regions int,
	ks, zclamps, pols, scens string, sloP99, sloInacc float64, sloRung, jsonOut string, quiet bool) error {
	if rate <= 0 {
		rate = float64(nodes) / 10
		if rate < 1 {
			rate = 1
		}
	}
	rung, err := plan.RungFromName(sloRung)
	if err != nil {
		return err
	}
	shards, err := parseInts(ks)
	if err != nil {
		return fmt.Errorf("-ks: %w", err)
	}
	clamps, err := parseFloats(zclamps)
	if err != nil {
		return fmt.Errorf("-zclamps: %w", err)
	}
	cfg := plan.Config{
		Nodes:           nodes,
		Rate:            rate,
		ServicePerShard: service,
		SpaceSide:       side,
		Seed:            seed,
		L:               regions,
		Shards:          shards,
		ZClamps:         clamps,
		Policies:        splitList(pols),
		Scenarios:       splitList(scens),
		Objective:       plan.SLO{P99LatencyMS: sloP99, MaxInaccuracyM: sloInacc, MaxRung: rung},
	}
	if !quiet {
		cfg.Progress = func(done, total int, o *plan.Outcome) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d] K=%d z=%.2f %s %s        ",
				done, total, o.Shards, o.ZClamp, o.Policy, o.Scenario)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	rep, err := plan.Plan(cfg)
	if err != nil {
		return err
	}
	rep.Command = strings.Join(append([]string{"liraplan"}, os.Args[1:]...), " ")
	if jsonOut != "" {
		data, err := rep.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (feasible=%v verified=%v)\n", jsonOut, rep.Feasible, rep.Verified)
	}
	_, err = os.Stdout.WriteString(rep.Table())
	return err
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

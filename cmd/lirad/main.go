// Command lirad runs the LIRA mobile CQ server as a network daemon: it
// listens for node and query clients speaking the binary wire protocol,
// maintains the statistics grid from the update stream, and periodically
// re-runs the adaptation, broadcasting fresh shedding regions and update
// throttlers.
//
// Usage:
//
//	lirad -listen 127.0.0.1:7400 -nodes 10000 -l 250 -z 0.5 \
//	      -http 127.0.0.1:7401
//
// With -shards K (K > 1) the daemon deploys the spatially sharded
// evaluation engine: position updates enqueue onto per-shard lock-free
// rings without touching the server mutex, and /metrics grows
// lira_shard<N>_* gauges. Query results are byte-identical at any K.
//
// With -http set, the daemon serves live introspection: /metrics in the
// Prometheus text format, /debug/lira as a JSON snapshot of the shedding
// pipeline (current z, region tree, Δᵢ table, decision-journal tail), and
// — with -pprof — the net/http/pprof profile handlers. -journal streams
// every decision record to a JSONL file.
//
// Drive it with cmd/liranode.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lira/internal/basestation"
	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/netsvc"
	"lira/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7400", "listen address")
		nodes    = flag.Int("nodes", 10000, "maximum node id + 1")
		l        = flag.Int("l", 250, "number of shedding regions")
		z        = flag.Float64("z", 0.5, "throttle fraction")
		side     = flag.Float64("side", 14142, "space side length (meters)")
		fairness = flag.Float64("fairness", 50, "fairness threshold Δ⇔ (meters)")
		adapt    = flag.Duration("adapt", 30*time.Second, "adaptation period")
		eval     = flag.Duration("eval", 2*time.Second, "query evaluation period")
		stations = flag.Float64("station-radius", 0, "uniform station radius; 0 = one station")
		shards   = flag.Int("shards", 1, "spatial shard count K (1 = unsharded engine; >1 enables lock-free sharded ingest)")
		httpAddr = flag.String("http", "", "introspection listen address (/metrics, /debug/lira); empty disables")
		pprof    = flag.Bool("pprof", false, "also serve net/http/pprof on the -http address")
		journal  = flag.String("journal", "", "append decision-journal records to this JSONL file")
	)
	flag.Parse()

	hub := telemetry.NewHub(0)
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		hub.Journal.SetSink(f)
	}

	space := geo.Rect{MinX: 0, MinY: 0, MaxX: *side, MaxY: *side}
	cfg := netsvc.ServerConfig{
		Core: cqserver.Config{
			Space:    space,
			Nodes:    *nodes,
			L:        *l,
			Curve:    fmodel.Hyperbolic(5, 100, 95),
			Fairness: *fairness,
		},
		Shards:     *shards,
		Z:          *z,
		AdaptEvery: *adapt,
		EvalEvery:  *eval,
		Telemetry:  hub,
	}
	if *stations > 0 {
		sts, err := basestation.PlaceUniform(space, *stations)
		if err != nil {
			fatal(err)
		}
		cfg.Stations = sts
	}
	srv, err := netsvc.Listen(*listen, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lirad: serving %v (l=%d, z=%.2f, %d stations, %d shards)\n",
		srv.Addr(), *l, *z, max(1, len(cfg.Stations)), srv.Sharded())

	var obs *http.Server
	if *httpAddr != "" {
		mux := telemetry.NewMux(hub, func() any { return srv.Introspect() }, *pprof)
		obs = &http.Server{Addr: *httpAddr, Handler: mux}
		go func() {
			if err := obs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal(err)
			}
		}()
		fmt.Fprintf(os.Stderr, "lirad: introspection on http://%s/metrics and /debug/lira\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "lirad: shutting down")
	if obs != nil {
		obs.Close()
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	if err := hub.Journal.Err(); err != nil {
		fatal(fmt.Errorf("journal sink: %w", err))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lirad:", err)
	os.Exit(1)
}

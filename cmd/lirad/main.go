// Command lirad runs the LIRA mobile CQ server as a network daemon: it
// listens for node and query clients speaking the binary wire protocol,
// maintains the statistics grid from the update stream, and periodically
// re-runs the adaptation, broadcasting fresh shedding regions and update
// throttlers.
//
// Usage:
//
//	lirad -listen 127.0.0.1:7400 -nodes 10000 -l 250 -z 0.5 \
//	      -http 127.0.0.1:7401
//
// With -shards K (K > 1) the daemon deploys the spatially sharded
// evaluation engine: position updates enqueue onto per-shard lock-free
// rings without touching the server mutex, and /metrics grows
// lira_shard<N>_* gauges. Query results are byte-identical at any K.
//
// With -admission the daemon walks the health-driven degradation
// ladder (healthy → warning → shed → critical) each control tick:
// warning tightens the effective z, shed pre-rejects the oldest
// fraction of ingest ahead of the rings and defers index compaction,
// and critical answers queries from prediction alone. The ladder state
// appears in /debug/lira under "admission" and as lira_admission_*
// metrics; every rung change is journaled.
//
// With -http set, the daemon serves live introspection: /metrics in the
// Prometheus text format, /debug/lira as a JSON snapshot of the shedding
// pipeline (current z, region tree, Δᵢ table, decision-journal tail), and
// — with -pprof — the net/http/pprof profile handlers. -journal streams
// every decision record to a JSONL file.
//
// With -spans the daemon traces the pipeline — frame ingest, batch
// decode, admission verdicts, drain, the adaptation's GRIDREDUCE /
// GREEDYINCREMENT / THROTLOOP stages, and query evaluation — into a
// bounded in-memory ring served as Chrome trace-event JSON at
// /debug/lira/spans (load it in Perfetto or chrome://tracing).
// -spanssample N keeps every Nth root trace; -spanscap bounds the ring.
//
// The -slo-* flags arm the burn-rate tracker: -slo-evalp99 bounds the
// Evaluate p99 (seconds), -slo-inaccuracy bounds the shed fraction of
// offered records, and -slo-rung bounds the admission-ladder state
// ordinal; each tracks a multi-window error-budget burn against
// -slo-objective and surfaces lira_slo_* metrics, KindSLO journal
// records, and an "slo" block in /debug/lira.
//
// Drive it with cmd/liranode.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lira/internal/admission"
	"lira/internal/basestation"
	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/netsvc"
	"lira/internal/slo"
	"lira/internal/spans"
	"lira/internal/telemetry"
)

// options is the daemon configuration, one field per flag.
type options struct {
	listen    string
	nodes     int
	l         int
	z         float64
	side      float64
	fairness  float64
	queue     int
	drain     int
	adapt     time.Duration
	eval      time.Duration
	stations  float64
	shards    int
	admission bool
	httpAddr  string
	pprof     bool
	journal   string

	spans       bool
	spansSample int
	spansCap    int

	sloEvalP99    float64
	sloInaccuracy float64
	sloRung       float64
	sloObjective  float64
	sloWindow     int

	logf func(format string, args ...any) // nil silences progress output
}

func parseFlags() options {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:7400", "listen address")
	flag.IntVar(&o.nodes, "nodes", 10000, "maximum node id + 1")
	flag.IntVar(&o.l, "l", 250, "number of shedding regions")
	flag.Float64Var(&o.z, "z", 0.5, "throttle fraction")
	flag.Float64Var(&o.side, "side", 14142, "space side length (meters)")
	flag.Float64Var(&o.fairness, "fairness", 50, "fairness threshold Δ⇔ (meters)")
	flag.IntVar(&o.queue, "queue", 0, "ingest queue capacity (0 = engine default)")
	flag.IntVar(&o.drain, "drain", 0, "max updates drained per background tick (0 = unbounded)")
	flag.DurationVar(&o.adapt, "adapt", 30*time.Second, "adaptation period")
	flag.DurationVar(&o.eval, "eval", 2*time.Second, "query evaluation period")
	flag.Float64Var(&o.stations, "station-radius", 0, "uniform station radius; 0 = one station")
	flag.IntVar(&o.shards, "shards", 1, "spatial shard count K (1 = unsharded engine; >1 enables lock-free sharded ingest)")
	flag.BoolVar(&o.admission, "admission", false, "enable the health-driven admission ladder (default thresholds)")
	flag.StringVar(&o.httpAddr, "http", "", "introspection listen address (/metrics, /debug/lira); empty disables")
	flag.BoolVar(&o.pprof, "pprof", false, "also serve net/http/pprof on the -http address")
	flag.StringVar(&o.journal, "journal", "", "append decision-journal records to this JSONL file")
	flag.BoolVar(&o.spans, "spans", false, "trace the pipeline into /debug/lira/spans (Chrome trace-event JSON)")
	flag.IntVar(&o.spansSample, "spanssample", 1, "keep every Nth root trace (head sampling)")
	flag.IntVar(&o.spansCap, "spanscap", 0, "span ring capacity (0 = default 8192)")
	flag.Float64Var(&o.sloEvalP99, "slo-evalp99", 0, "SLO bound on Evaluate p99 seconds (0 disables)")
	flag.Float64Var(&o.sloInaccuracy, "slo-inaccuracy", 0, "SLO bound on the shed fraction of offered records (0 disables)")
	flag.Float64Var(&o.sloRung, "slo-rung", -1, "SLO bound on the admission-ladder rung ordinal (negative disables)")
	flag.Float64Var(&o.sloObjective, "slo-objective", 0.99, "required good-tick fraction per SLO")
	flag.IntVar(&o.sloWindow, "slo-window", 0, "SLO long window in ticks (0 = default 240)")
	flag.Parse()
	o.logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
	return o
}

// daemon is one running lirad: the CQ server, the optional
// introspection listener, and the journal sink. start builds it;
// shutdown unwinds it in reverse order, draining every goroutine.
type daemon struct {
	srv     *netsvc.Server
	hub     *telemetry.Hub
	obs     *http.Server
	obsLn   net.Listener
	obsDone chan struct{}
	sink    *os.File
}

// start boots a daemon from o. On error, everything partially started
// is torn back down.
func start(o options) (*daemon, error) {
	d := &daemon{hub: telemetry.NewHub(0)}
	logf := o.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if o.journal != "" {
		f, err := os.OpenFile(o.journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		d.sink = f
		d.hub.Journal.SetSink(f)
	}
	if o.spans {
		d.hub.SetSpans(spans.New(spans.Config{
			Capacity: o.spansCap,
			Sample:   o.spansSample,
			Seed:     1,
		}))
	}

	space := geo.Rect{MinX: 0, MinY: 0, MaxX: o.side, MaxY: o.side}
	cfg := netsvc.ServerConfig{
		Core: cqserver.Config{
			Space:     space,
			Nodes:     o.nodes,
			L:         o.l,
			QueueSize: o.queue,
			Curve:     fmodel.Hyperbolic(5, 100, 95),
			Fairness:  o.fairness,
		},
		Shards:       o.shards,
		Z:            o.z,
		AdaptEvery:   o.adapt,
		EvalEvery:    o.eval,
		DrainPerTick: o.drain,
		Telemetry:    d.hub,
	}
	if o.admission {
		cfg.Admission = &admission.Config{} // zero value → default ladder
	}
	// SLO targets arm only with a valid objective, so a zero-value
	// options (tests construct one directly) means "no SLOs" rather
	// than a config error.
	if o.sloObjective > 0 && o.sloObjective < 1 {
		var sloTargets []slo.Target
		if o.sloEvalP99 > 0 {
			sloTargets = append(sloTargets, slo.Target{Name: "eval_p99", Bound: o.sloEvalP99, Objective: o.sloObjective})
		}
		if o.sloInaccuracy > 0 {
			sloTargets = append(sloTargets, slo.Target{Name: "inaccuracy", Bound: o.sloInaccuracy, Objective: o.sloObjective})
		}
		if o.sloRung >= 0 {
			sloTargets = append(sloTargets, slo.Target{Name: "rung", Bound: o.sloRung, Objective: o.sloObjective})
		}
		if len(sloTargets) > 0 {
			cfg.SLO = &slo.Config{Targets: sloTargets, Window: o.sloWindow}
		}
	}
	if o.stations > 0 {
		sts, err := basestation.PlaceUniform(space, o.stations)
		if err != nil {
			d.closeSink()
			return nil, err
		}
		cfg.Stations = sts
	}
	srv, err := netsvc.Listen(o.listen, cfg)
	if err != nil {
		d.closeSink()
		return nil, err
	}
	d.srv = srv
	logf("lirad: serving %v (l=%d, z=%.2f, %d stations, %d shards, admission=%v)\n",
		srv.Addr(), o.l, o.z, max(1, len(cfg.Stations)), srv.Sharded(), o.admission)

	if o.httpAddr != "" {
		ln, err := net.Listen("tcp", o.httpAddr)
		if err != nil {
			d.shutdown()
			return nil, err
		}
		mux := telemetry.NewMux(d.hub, func() any { return srv.Introspect() }, o.pprof)
		d.obsLn = ln
		d.obs = &http.Server{Handler: mux}
		d.obsDone = make(chan struct{})
		go func() {
			defer close(d.obsDone)
			if err := d.obs.Serve(ln); err != nil && err != http.ErrServerClosed {
				logf("lirad: introspection server: %v\n", err)
			}
		}()
		logf("lirad: introspection on http://%s/metrics and /debug/lira\n", ln.Addr())
	}
	return d, nil
}

// httpAddr returns the bound introspection address ("" when disabled).
func (d *daemon) httpAddr() string {
	if d.obsLn == nil {
		return ""
	}
	return d.obsLn.Addr().String()
}

// shutdown stops the daemon: the introspection server first (waiting
// for its serve goroutine), then the CQ server (which drains every
// per-connection goroutine), then the journal sink.
func (d *daemon) shutdown() error {
	var first error
	if d.obs != nil {
		if err := d.obs.Close(); err != nil && first == nil {
			first = err
		}
		<-d.obsDone
		d.obs, d.obsLn = nil, nil
	}
	if d.srv != nil {
		if err := d.srv.Close(); err != nil && first == nil {
			first = err
		}
		d.srv = nil
	}
	if err := d.hub.Journal.Err(); err != nil && first == nil {
		first = fmt.Errorf("journal sink: %w", err)
	}
	d.closeSink()
	return first
}

func (d *daemon) closeSink() {
	if d.sink != nil {
		d.sink.Close()
		d.sink = nil
	}
}

func main() {
	o := parseFlags()
	d, err := start(o)
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "lirad: shutting down")
	if err := d.shutdown(); err != nil {
		fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lirad:", err)
	os.Exit(1)
}

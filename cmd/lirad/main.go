// Command lirad runs the LIRA mobile CQ server as a network daemon: it
// listens for node and query clients speaking the binary wire protocol,
// maintains the statistics grid from the update stream, and periodically
// re-runs the adaptation, broadcasting fresh shedding regions and update
// throttlers.
//
// Usage:
//
//	lirad -listen 127.0.0.1:7400 -nodes 10000 -l 250 -z 0.5
//
// Drive it with cmd/liranode.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lira/internal/basestation"
	"lira/internal/cqserver"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/netsvc"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7400", "listen address")
		nodes    = flag.Int("nodes", 10000, "maximum node id + 1")
		l        = flag.Int("l", 250, "number of shedding regions")
		z        = flag.Float64("z", 0.5, "throttle fraction")
		side     = flag.Float64("side", 14142, "space side length (meters)")
		fairness = flag.Float64("fairness", 50, "fairness threshold Δ⇔ (meters)")
		adapt    = flag.Duration("adapt", 30*time.Second, "adaptation period")
		eval     = flag.Duration("eval", 2*time.Second, "query evaluation period")
		stations = flag.Float64("station-radius", 0, "uniform station radius; 0 = one station")
	)
	flag.Parse()

	space := geo.Rect{MinX: 0, MinY: 0, MaxX: *side, MaxY: *side}
	cfg := netsvc.ServerConfig{
		Core: cqserver.Config{
			Space:    space,
			Nodes:    *nodes,
			L:        *l,
			Curve:    fmodel.Hyperbolic(5, 100, 95),
			Fairness: *fairness,
		},
		Z:          *z,
		AdaptEvery: *adapt,
		EvalEvery:  *eval,
	}
	if *stations > 0 {
		sts, err := basestation.PlaceUniform(space, *stations)
		if err != nil {
			fatal(err)
		}
		cfg.Stations = sts
	}
	srv, err := netsvc.Listen(*listen, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lirad: serving %v (l=%d, z=%.2f, %d stations)\n",
		srv.Addr(), *l, *z, max(1, len(cfg.Stations)))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "lirad: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lirad:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"lira/internal/geo"
	"lira/internal/netsvc"
)

// TestDaemonGracefulShutdownNoLeaks is the goroutine-census leak gate
// for the daemon lifecycle: boot a full lirad (sharded engine, admission
// ladder, introspection HTTP server) on ephemeral ports, drive it with a
// live node client, exercise /metrics and /debug/lira, shut down, and
// require the goroutine census to return to baseline — no stranded
// per-connection readers, no orphaned background loops, no HTTP serve
// goroutine left behind.
func TestDaemonGracefulShutdownNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	d, err := start(options{
		listen:    "127.0.0.1:0",
		nodes:     64,
		l:         13,
		z:         0.5,
		side:      2000,
		fairness:  50,
		queue:     128,
		adapt:     50 * time.Millisecond,
		eval:      20 * time.Millisecond,
		shards:    2,
		admission: true,
		httpAddr:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	shut := false
	defer func() {
		if !shut {
			d.shutdown()
		}
	}()

	// A live node connection: the daemon spawns per-connection reader
	// goroutines that shutdown must drain.
	c, err := netsvc.DialNodeConfig(d.srv.Addr().String(), netsvc.NodeConfig{
		ID:            1,
		Pos:           geo.Point{X: 500, Y: 500},
		FallbackDelta: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 20; i++ {
		now++
		c.Observe(geo.Point{X: 500 + 20*float64(i%2), Y: 500}, geo.Vector{}, now)
	}

	// The introspection endpoints must expose the ladder.
	get := func(path string) string {
		resp, err := http.Get("http://" + d.httpAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("GET %s: status=%d err=%v", path, resp.StatusCode, err)
		}
		return string(body)
	}
	if m := get("/metrics"); !strings.Contains(m, "lira_admission_state") {
		t.Errorf("/metrics missing lira_admission_state:\n%.400s", m)
	}
	var debug struct {
		State struct {
			Admission *struct {
				State string `json:"state"`
			} `json:"admission"`
		} `json:"state"`
	}
	if err := json.Unmarshal([]byte(get("/debug/lira")), &debug); err != nil {
		t.Fatalf("/debug/lira not JSON: %v", err)
	}
	if debug.State.Admission == nil || debug.State.Admission.State == "" {
		t.Error("/debug/lira state missing the admission ladder view")
	}

	c.Close()
	if err := d.shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	shut = true
	if d.httpAddr() != "" {
		t.Error("httpAddr non-empty after shutdown")
	}

	// Goroutine census back to baseline (bounded wait: readers unwind
	// asynchronously after Close returns).
	waitGoroutines(t, baseline+2)
}

// TestDaemonStartErrorsDoNotLeak: a start that fails late (introspection
// port collision) must tear down everything it already built.
func TestDaemonStartErrorsDoNotLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	first, err := start(options{
		listen: "127.0.0.1:0", nodes: 16, l: 13, z: 0.5, side: 2000,
		fairness: 50, adapt: time.Second, eval: time.Second,
		httpAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = start(options{
		listen: "127.0.0.1:0", nodes: 16, l: 13, z: 0.5, side: 2000,
		fairness: 50, adapt: time.Second, eval: time.Second,
		httpAddr: first.httpAddr(), // already bound → late failure
	})
	if err == nil {
		t.Fatal("second start on a bound introspection port should fail")
	}
	if err := first.shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	waitGoroutines(t, baseline+2)
}

func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s",
		runtime.NumGoroutine(), limit, buf[:n])
}

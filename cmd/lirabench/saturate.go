package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
	"lira/internal/wire"
)

// saturateStep is one rung of the offered-rate ramp: how hard the ingest
// path was pushed, what it actually sustained, and what that cost in
// tail latency and GC activity.
type saturateStep struct {
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	// Efficiency is achieved/offered; the knee detector thresholds it.
	Efficiency    float64 `json:"efficiency"`
	P99EvaluateMS float64 `json:"p99_evaluate_ms"`
	Evals         int     `json:"evals"`
	Shed          int64   `json:"shed"`
	GCCycles      uint32  `json:"gc_cycles"`
	GCPauseMS     float64 `json:"gc_pause_ms"`
	HeapAllocMB   float64 `json:"heap_alloc_mb"`
}

// pathComparison is the honest speedup record: the pre-PR per-update
// ingest path (one frame per report, allocating ReadFrame, per-update
// decode) against the batched path (FrameReader + vectored zero-alloc
// decode), both driving the same engine on one core.
type pathComparison struct {
	PerUpdatePerSec float64 `json:"per_update_per_sec"`
	BatchPerSec     float64 `json:"batch_per_sec"`
	Speedup         float64 `json:"speedup"`
	Records         int     `json:"records"`
}

// saturateReport is the schema of the -saturatejson artifact
// (BENCH_PR6.json).
type saturateReport struct {
	Command    string         `json:"command"`
	Nodes      int            `json:"nodes"`
	Shards     int            `json:"shards"`
	BatchSize  int            `json:"batch_size"`
	SliceMS    float64        `json:"slice_ms"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Steps      []saturateStep `json:"steps"`
	// Knee is the last step that sustained ≥95% of its offered rate: the
	// saturation throughput the deployment can honestly promise.
	Knee  *saturateStep  `json:"knee"`
	Paths pathComparison `json:"paths"`
}

// satEncoded holds the pre-encoded update stream both measurement modes
// replay: the same reports framed one way per path, so the comparison
// isolates the wire format and decode discipline.
type satEncoded struct {
	perUpdate []byte // stream of TypeUpdate frames
	batched   []byte // the same records as TypeUpdateBatch frames
	records   int
}

// encodeSatStream generates a deterministic drifting population and
// pre-encodes records update frames over it, batched at batchSize.
func encodeSatStream(nodes, records, batchSize int, seed uint64) *satEncoded {
	r := rng.New(seed)
	pos := make([]geo.Point, nodes)
	vel := make([]geo.Vector, nodes)
	for i := range pos {
		pos[i] = geo.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000)}
		vel[i] = geo.Vector{X: r.Range(-10, 10), Y: r.Range(-10, 10)}
	}
	enc := &satEncoded{records: records}
	var batch wire.UpdateBatch
	t := 0.0
	for n := 0; n < records; n++ {
		id := n % nodes
		if id == 0 {
			t += 0.1
		}
		pos[id].X += vel[id].X * 0.1
		pos[id].Y += vel[id].Y * 0.1
		u := wire.Update{Node: uint32(id), Report: motion.Report{Pos: pos[id], Vel: vel[id], Time: t}}
		enc.perUpdate = wire.AppendUpdate(enc.perUpdate, u)
		batch.Append(u)
		if batch.Len() == batchSize || n == records-1 {
			enc.batched = wire.AppendUpdateBatch(enc.batched, &batch)
			batch.Reset()
		}
	}
	return enc
}

func newSatEngine(nodes, shards int) (engine.Engine, error) {
	eng, err := engine.New(cqserver.Config{
		Space:     geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		Nodes:     nodes,
		L:         13,
		QueueSize: 1 << 16,
		Curve:     fmodel.Hyperbolic(5, 100, 95),
	}, shards)
	if err != nil {
		return nil, err
	}
	eng.RegisterQueries([]geo.Rect{
		geo.NewRect(0, 0, 400, 400),
		geo.NewRect(300, 300, 700, 700),
		geo.NewRect(600, 100, 950, 500),
		geo.NewRect(100, 600, 500, 950),
	})
	return eng, nil
}

// runSaturate is the -saturate mode: ramp the offered update rate over
// fixed wall slices against a live engine — batched frames decoded on
// the measurement thread, evaluations at a steady cadence — and report
// throughput, p99 Evaluate latency, and GC behavior per step, then the
// single-core per-update-vs-batch path comparison.
func runSaturate(nodes, shards, batchSize, steps int, baseRate float64, slice time.Duration, out string) error {
	enc := encodeSatStream(nodes, nodes*64, batchSize, 1)
	rep := saturateReport{
		Command: fmt.Sprintf("lirabench -saturate -nodes %d -satshards %d -satbase %.0f -satsteps %d -satslice %v",
			nodes, shards, baseRate, steps, slice),
		Nodes:      nodes,
		Shards:     shards,
		BatchSize:  batchSize,
		SliceMS:    float64(slice) / float64(time.Millisecond),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	eng, err := newSatEngine(nodes, shards)
	if err != nil {
		return err
	}
	simNow := 1.0
	warm := func() {
		// Warm the motion table, indexes, and result buffers so step 0
		// measures steady state, not first-touch growth.
		fr := wire.NewFrameReader(bytes.NewReader(enc.batched))
		var batch wire.UpdateBatch
		for {
			_, payload, err := fr.Next()
			if err != nil {
				break
			}
			if err := wire.DecodeUpdateBatchInto(&batch, payload); err != nil {
				break
			}
			eng.IngestShedOldestColumns(batch.Node, batch.X, batch.Y, batch.VX, batch.VY, batch.Time)
		}
		eng.Drain(-1)
		for i := 0; i < 3; i++ {
			eng.Evaluate(simNow)
			simNow += 0.1
		}
	}
	warm()

	offered := baseRate
	evalEvery := 20 * time.Millisecond
	for s := 0; s < steps; s++ {
		rd := bytes.NewReader(enc.batched)
		fr := wire.NewFrameReader(rd)
		var batch wire.UpdateBatch
		var lat []float64
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		shed0 := engineShed(eng)

		start := time.Now()
		deadline := start.Add(slice)
		nextEval := start.Add(evalEvery)
		pushed := 0
		for time.Now().Before(deadline) {
			// Pace in one-batch granules: sleep only while ahead of the
			// offered schedule, so a saturated step degrades to a tight
			// decode+ingest loop and measures capacity.
			_, payload, err := fr.Next()
			if err != nil {
				rd.Reset(enc.batched)
				fr = wire.NewFrameReader(rd)
				continue
			}
			if err := wire.DecodeUpdateBatchInto(&batch, payload); err != nil {
				return fmt.Errorf("saturate: decode: %w", err)
			}
			eng.IngestShedOldestColumns(batch.Node, batch.X, batch.Y, batch.VX, batch.VY, batch.Time)
			pushed += batch.Len()
			now := time.Now()
			if now.After(nextEval) {
				eng.Drain(-1)
				t0 := time.Now()
				eng.Evaluate(simNow)
				lat = append(lat, time.Since(t0).Seconds()*1000)
				simNow += 0.1
				nextEval = nextEval.Add(evalEvery)
			}
			ahead := time.Duration(float64(pushed)/offered*float64(time.Second)) - now.Sub(start)
			if ahead > time.Millisecond {
				time.Sleep(ahead)
			}
		}
		elapsed := time.Since(start).Seconds()
		eng.Drain(-1)
		runtime.ReadMemStats(&m1)
		step := saturateStep{
			OfferedPerSec:  offered,
			AchievedPerSec: float64(pushed) / elapsed,
			Evals:          len(lat),
			Shed:           engineShed(eng) - shed0,
			GCCycles:       m1.NumGC - m0.NumGC,
			GCPauseMS:      float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6,
			HeapAllocMB:    float64(m1.HeapAlloc) / (1 << 20),
		}
		step.Efficiency = step.AchievedPerSec / step.OfferedPerSec
		step.P99EvaluateMS = percentile(lat, 0.99)
		rep.Steps = append(rep.Steps, step)
		fmt.Fprintf(os.Stderr, "saturate: offered %.0f/s achieved %.0f/s (%.1f%%) p99 %.3fms gc %d\n",
			step.OfferedPerSec, step.AchievedPerSec, 100*step.Efficiency, step.P99EvaluateMS, step.GCCycles)
		offered *= 2
	}
	for i := range rep.Steps {
		if rep.Steps[i].Efficiency >= 0.95 {
			rep.Knee = &rep.Steps[i]
		}
	}

	paths, err := runPathComparison(nodes, shards, enc)
	if err != nil {
		return err
	}
	rep.Paths = *paths

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	je := json.NewEncoder(w)
	je.SetIndent("", "  ")
	if err := je.Encode(&rep); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "saturate report written to %s\n", out)
	}
	return nil
}

// runPathComparison measures the sustained single-core ingest throughput
// of both wire disciplines over identical records: the pre-PR path
// (wire.ReadFrame's fresh payload buffer per frame + DecodeUpdate +
// one IngestShedOldest per frame) and the batched path (FrameReader's
// pooled buffers + DecodeUpdateBatchInto + columnar vectored ingest).
// Both loops drain periodically so the apply cost is included. Each
// path's rate is the fastest of its full passes — the least-interference
// estimate on a shared machine; both paths get the same treatment, so
// neither is favored.
func runPathComparison(nodes, shards int, enc *satEncoded) (*pathComparison, error) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	const passes = 8
	drainEvery := 1 << 12

	perEng, err := newSatEngine(nodes, shards)
	if err != nil {
		return nil, err
	}
	perSec := 0.0
	for p := 0; p < passes; p++ {
		start := time.Now()
		pushed := 0
		rd := bytes.NewReader(enc.perUpdate)
		for {
			typ, payload, err := wire.ReadFrame(rd)
			if err != nil {
				break
			}
			if typ != wire.TypeUpdate {
				return nil, fmt.Errorf("saturate: unexpected frame %v in per-update stream", typ)
			}
			u, err := wire.DecodeUpdate(payload)
			if err != nil {
				return nil, err
			}
			perEng.IngestShedOldest(cqserver.Update{Node: int(u.Node), Report: u.Report})
			if pushed++; pushed%drainEvery == 0 {
				perEng.Drain(-1)
			}
		}
		perEng.Drain(-1)
		if r := float64(pushed) / time.Since(start).Seconds(); r > perSec {
			perSec = r
		}
	}

	batchEng, err := newSatEngine(nodes, shards)
	if err != nil {
		return nil, err
	}
	batchSec := 0.0
	var batch wire.UpdateBatch
	for p := 0; p < passes; p++ {
		start := time.Now()
		pushed := 0
		rd := bytes.NewReader(enc.batched)
		fr := wire.NewFrameReader(rd)
		for {
			_, payload, err := fr.Next()
			if err != nil {
				break
			}
			if err := wire.DecodeUpdateBatchInto(&batch, payload); err != nil {
				return nil, err
			}
			batchEng.IngestShedOldestColumns(batch.Node, batch.X, batch.Y, batch.VX, batch.VY, batch.Time)
			if pushed += batch.Len(); pushed%drainEvery < batch.Len() {
				batchEng.Drain(-1)
			}
		}
		batchEng.Drain(-1)
		if r := float64(pushed) / time.Since(start).Seconds(); r > batchSec {
			batchSec = r
		}
	}

	return &pathComparison{
		PerUpdatePerSec: perSec,
		BatchPerSec:     batchSec,
		Speedup:         batchSec / perSec,
		Records:         enc.records * passes,
	}, nil
}

// engineShed reads the cumulative shed count from the engine's queue
// accounting.
func engineShed(eng engine.Engine) int64 { return eng.Dropped() }

func percentile(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	vals := append([]float64(nil), lat...)
	sort.Float64s(vals)
	return vals[int(p*float64(len(vals)-1))]
}

// Command lirabench regenerates the tables and figures of the LIRA paper's
// evaluation section (§4). Each experiment prints an aligned text table
// with a note recalling what the paper reports, so shape comparisons are
// immediate.
//
// Usage:
//
//	lirabench -exp all                 # everything, quick scale
//	lirabench -exp fig4,fig5 -scale paper
//	lirabench -nodes 4000 -exp fig9
//
// Scales: "quick" (default) runs a reduced environment in a couple of
// minutes; "paper" uses the full Table 2 parameters (10 000 nodes, ≈200
// km², l = 250) and takes correspondingly longer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lira/internal/experiment"
	"lira/internal/roadnet"
	"lira/internal/workload"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids: fig1,fig3,fig4,...,fig14,table3 or all")
		scale    = flag.String("scale", "quick", "quick | paper")
		nodes    = flag.Int("nodes", 0, "override mobile node count")
		duration = flag.Int("duration", 0, "override measured ticks per run")
		seed     = flag.Uint64("seed", 1, "environment seed")
	)
	flag.Parse()

	envCfg, sweep := configsFor(*scale)
	if *nodes > 0 {
		envCfg.Nodes = *nodes
	}
	if *duration > 0 {
		sweep.Base.DurationTicks = *duration
	}
	envCfg.Net.Seed = *seed
	envCfg.TraceSeed = *seed + 1

	fmt.Fprintf(os.Stderr, "building environment: %d nodes, %.0f km² space, calibrating f(Δ)...\n",
		envCfg.Nodes, spaceArea(envCfg)/1e6)
	start := time.Now()
	env, err := experiment.NewEnv(envCfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v (f(Δ⊣) = %.3f)\n\n",
		time.Since(start).Round(time.Millisecond), env.Curve.Eval(env.Curve.MaxDelta()))

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]
	run := func(id string, fn func() (*experiment.Figure, error)) {
		if !all && !wanted[id] {
			return
		}
		t0 := time.Now()
		f, err := fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		f.Notes = append(f.Notes, fmt.Sprintf("generated in %v", time.Since(t0).Round(time.Millisecond)))
		f.Render(os.Stdout)
	}

	run("fig1", func() (*experiment.Figure, error) { return experiment.Figure1(env), nil })
	run("fig3", func() (*experiment.Figure, error) {
		f, _, err := experiment.Figure3(env, sweep.Base)
		return f, err
	})
	if all || wanted["fig4"] || wanted["fig5"] {
		t0 := time.Now()
		f4, f5, err := experiment.Figures4and5(env, sweep)
		if err != nil {
			fatal(err)
		}
		note := fmt.Sprintf("generated in %v (shared sweep)", time.Since(t0).Round(time.Millisecond))
		f4.Notes = append(f4.Notes, note)
		f5.Notes = append(f5.Notes, note)
		if all || wanted["fig4"] {
			f4.Render(os.Stdout)
		}
		if all || wanted["fig5"] {
			f5.Render(os.Stdout)
		}
	}
	run("fig6", func() (*experiment.Figure, error) { return experiment.Figure6or7(env, sweep, workload.Inverse) })
	run("fig7", func() (*experiment.Figure, error) { return experiment.Figure6or7(env, sweep, workload.Random) })
	run("fig8", func() (*experiment.Figure, error) { return experiment.Figure8(env, sweep) })
	run("fig9", func() (*experiment.Figure, error) { return experiment.Figure9(env, sweep) })
	run("fig10", func() (*experiment.Figure, error) { return experiment.Figure10(env, sweep) })
	run("fig11", func() (*experiment.Figure, error) { return experiment.Figure11(env, sweep) })
	run("fig12", func() (*experiment.Figure, error) { return experiment.Figure12(env, sweep) })
	run("fig13", func() (*experiment.Figure, error) { return experiment.Figure13(env, sweep) })
	run("fig14", func() (*experiment.Figure, error) { return experiment.Figure14(env, sweep) })
	run("table3", func() (*experiment.Figure, error) { return experiment.Table3(env, sweep) })
}

// configsFor maps a scale name to an environment and sweep.
func configsFor(scale string) (experiment.EnvConfig, experiment.Sweep) {
	switch scale {
	case "paper":
		envCfg := experiment.DefaultEnvConfig()
		sweep := experiment.DefaultSweep()
		sweep.Base.DurationTicks = 1800
		return envCfg, sweep
	case "quick":
		netCfg := roadnet.DefaultConfig()
		netCfg.Side = 7000
		netCfg.GridStep = 350
		netCfg.Centers = 3
		netCfg.CenterRadius = 1400
		envCfg := experiment.DefaultEnvConfig()
		envCfg.Net = netCfg
		envCfg.Nodes = 3000
		envCfg.CalibNodes = 800
		envCfg.CalibTicks = 180
		base := experiment.DefaultRunConfig()
		base.L = 100
		base.WarmupTicks = 90
		base.DurationTicks = 600
		sweep := experiment.DefaultSweep()
		sweep.Base = base
		sweep.Ls = []int{13, 49, 100, 250}
		sweep.CostLs = []int{13, 49, 100, 250, 520}
		sweep.Radii = []float64{700, 1400, 2100, 2800, 3500}
		return envCfg, sweep
	default:
		fatal(fmt.Errorf("unknown scale %q (want quick or paper)", scale))
		panic("unreachable")
	}
}

func spaceArea(cfg experiment.EnvConfig) float64 {
	side := cfg.Net.Side
	if side == 0 {
		side = roadnet.DefaultConfig().Side
	}
	return side * side
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lirabench:", err)
	os.Exit(1)
}

// Command lirabench regenerates the tables and figures of the LIRA paper's
// evaluation section (§4). Each experiment prints an aligned text table
// with a note recalling what the paper reports, so shape comparisons are
// immediate.
//
// Usage:
//
//	lirabench -exp all                 # everything, quick scale
//	lirabench -exp fig4,fig5 -scale paper
//	lirabench -nodes 4000 -exp fig9
//	lirabench -parallel 4              # 4 sweep workers, same tables
//	lirabench -json BENCH_PR1.json     # serial-vs-parallel timing report
//	lirabench -shards 1,2,4,8 -shardjson BENCH_PR4.json
//	lirabench -policy -policyjson BENCH_PR10.json
//	lirabench -exp fig9 -expshards 4   # same tables on the K=4 sharded engine
//	lirabench -admission -admissionjson BENCH_PR7.json
//
// Scales: "quick" (default) runs a reduced environment in a couple of
// minutes; "paper" uses the full Table 2 parameters (10 000 nodes, ≈200
// km², l = 250) and takes correspondingly longer.
//
// -parallel sets the sweep worker count (0 = GOMAXPROCS, 1 = serial).
// Results are byte-identical at every setting. -json switches to benchmark
// mode: each Run-based figure is generated twice — serially and with the
// configured parallelism — and a JSON report of wall-clock times, speedups,
// and an output-identity check is written to the given path instead of the
// tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lira/internal/experiment"
	"lira/internal/roadnet"
	"lira/internal/workload"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids: fig1,fig3,fig4,...,fig14,table3 or all")
		scale    = flag.String("scale", "quick", "quick | paper")
		nodes    = flag.Int("nodes", 0, "override mobile node count")
		duration = flag.Int("duration", 0, "override measured ticks per run")
		seed     = flag.Uint64("seed", 1, "environment seed")
		parallel = flag.Int("parallel", 0, "sweep worker count: 0 = GOMAXPROCS, 1 = serial")
		jsonOut  = flag.String("json", "", "write a serial-vs-parallel benchmark report to this path instead of printing tables")
		obs      = flag.Bool("obs", false, "measure telemetry overhead and print the Evaluate-latency histogram and per-stage breakdown (embedded in the -json report when both are set)")
		shards   = flag.String("shards", "", "shard-scaling mode: comma-separated shard counts (e.g. 1,2,4,8); compares shard.Server at each K against the unsharded server on one deterministic workload")
		shardOut = flag.String("shardjson", "", "write the shard-scaling JSON report (BENCH_PR4.json) to this path; implies nothing unless -shards is set")
		policy   = flag.Bool("policy", false, "measured policy-comparison mode: run every canonical-registry policy (random-drop through hysteresis) through full reference-vs-candidate simulations over the road trace and a flash-crowd scenario, reporting measured E^C/E^P at equal throttle fractions")
		polOut   = flag.String("policyjson", "", "write the measured policy-comparison JSON report (BENCH_PR10.json) to this path; implies nothing unless -policy is set")
		saturate = flag.Bool("saturate", false, "saturation mode: ramp the offered update rate against the batched ingest hot path and report achieved throughput, p99 Evaluate latency, and GC stats per step, plus the single-core per-update-vs-batch path comparison")
		satOut   = flag.String("saturatejson", "", "write the saturation JSON report (BENCH_PR6.json) to this path; stdout when empty")
		satBase  = flag.Float64("satbase", 100000, "saturation mode: offered rate of the first ramp step, updates/sec (doubles each step)")
		satSteps = flag.Int("satsteps", 7, "saturation mode: ramp step count")
		satSlice = flag.Duration("satslice", 400*time.Millisecond, "saturation mode: wall-clock slice per ramp step")
		satK     = flag.Int("satshards", 1, "saturation mode: engine shard count")
		satBatch = flag.Int("satbatch", 64, "saturation mode: records per wire batch")

		expShards = flag.Int("expshards", 0, "figure mode: run every -exp sweep on the K-sharded engine (0 = unsharded); results are byte-identical at any K")

		adm    = flag.Bool("admission", false, "admission mode: drive a seeded flash-crowd overload through the admission controller's degradation ladder and report the ladder timeline, escalation/recovery ticks, pre-ring shedding, and healthy-state overhead (on vs off)")
		admOut = flag.String("admissionjson", "", "write the admission overload JSON report (BENCH_PR7.json) to this path; stdout when empty")

		spansOv  = flag.Bool("spansoverhead", false, "span-tracing mode: run the same deterministic sweep with tracing absent, disabled, sampled, and fully on; report the wall-clock overhead at each arming level and verify byte-identical trace exports")
		spansOut = flag.String("spansjson", "", "write the span-overhead JSON report (BENCH_PR8.json) to this path; stdout when empty")
	)
	flag.Parse()

	if *spansOv {
		sNodes, sTicks := 1500, 240
		if *nodes > 0 {
			sNodes = *nodes
		}
		if *duration > 0 {
			sTicks = *duration
		}
		if err := runSpansOverhead(sNodes, sTicks, *seed, *spansOut); err != nil {
			fatal(err)
		}
		return
	}

	if *adm {
		aNodes, aTicks := 2000, 0
		if *nodes > 0 {
			aNodes = *nodes
		}
		if *duration > 0 {
			aTicks = *duration
		}
		if err := runAdmissionBench(aNodes, aTicks, *seed, *admOut); err != nil {
			fatal(err)
		}
		return
	}

	if *saturate {
		sNodes := 2000
		if *nodes > 0 {
			sNodes = *nodes
		}
		if err := runSaturate(sNodes, *satK, *satBatch, *satSteps, *satBase, *satSlice, *satOut); err != nil {
			fatal(err)
		}
		return
	}

	if *policy {
		pNodes, pTicks := 1200, 120
		if *nodes > 0 {
			pNodes = *nodes
		}
		if *duration > 0 {
			pTicks = *duration
		}
		if err := runPolicyBench(pNodes, pTicks, 22, *seed, *parallel, *polOut); err != nil {
			fatal(err)
		}
		return
	}

	if *shards != "" {
		ks, err := parseShardList(*shards)
		if err != nil {
			fatal(err)
		}
		sNodes, sTicks := 2000, 150
		if *nodes > 0 {
			sNodes = *nodes
		}
		if *duration > 0 {
			sTicks = *duration
		}
		if err := runShardBench(ks, sNodes, sTicks, 24, *seed, *shardOut); err != nil {
			fatal(err)
		}
		return
	}

	envCfg, sweep := configsFor(*scale)
	if *nodes > 0 {
		envCfg.Nodes = *nodes
	}
	if *duration > 0 {
		sweep.Base.DurationTicks = *duration
	}
	envCfg.Net.Seed = *seed
	envCfg.TraceSeed = *seed + 1
	sweep.Parallel = *parallel
	// Engine selection for every figure driver: each driver copies
	// sweep.Base, so one assignment here runs the whole -exp set at K
	// shards (RunConfig.Shards threads it through experiment.Run).
	if *expShards > 0 {
		sweep.Base.Shards = *expShards
	}

	fmt.Fprintf(os.Stderr, "building environment: %d nodes, %.0f km² space, calibrating f(Δ)...\n",
		envCfg.Nodes, spaceArea(envCfg)/1e6)
	start := time.Now()
	env, err := experiment.NewEnv(envCfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v (f(Δ⊣) = %.3f)\n\n",
		time.Since(start).Round(time.Millisecond), env.Curve.Eval(env.Curve.MaxDelta()))

	wanted := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]

	var obsRep *obsReport
	if *obs {
		var err error
		if obsRep, err = runObs(env, sweep.Base); err != nil {
			fatal(err)
		}
	}

	if *jsonOut != "" {
		if err := writeBenchReport(*jsonOut, env, sweep, *scale, envCfg.Nodes, wanted, all, obsRep); err != nil {
			fatal(err)
		}
		return
	}
	if obsRep != nil {
		printObs(os.Stdout, obsRep)
	}

	run := func(id string, fn func() (*experiment.Figure, error)) {
		if !all && !wanted[id] {
			return
		}
		t0 := time.Now()
		f, err := fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		f.Notes = append(f.Notes, fmt.Sprintf("generated in %v", time.Since(t0).Round(time.Millisecond)))
		f.Render(os.Stdout)
	}

	run("fig1", func() (*experiment.Figure, error) { return experiment.Figure1(env), nil })
	run("fig3", func() (*experiment.Figure, error) {
		f, _, err := experiment.Figure3(env, sweep.Base)
		return f, err
	})
	if all || wanted["fig4"] || wanted["fig5"] {
		t0 := time.Now()
		f4, f5, err := experiment.Figures4and5(env, sweep)
		if err != nil {
			fatal(err)
		}
		note := fmt.Sprintf("generated in %v (shared sweep)", time.Since(t0).Round(time.Millisecond))
		f4.Notes = append(f4.Notes, note)
		f5.Notes = append(f5.Notes, note)
		if all || wanted["fig4"] {
			f4.Render(os.Stdout)
		}
		if all || wanted["fig5"] {
			f5.Render(os.Stdout)
		}
	}
	run("fig6", func() (*experiment.Figure, error) { return experiment.Figure6or7(env, sweep, workload.Inverse) })
	run("fig7", func() (*experiment.Figure, error) { return experiment.Figure6or7(env, sweep, workload.Random) })
	run("fig8", func() (*experiment.Figure, error) { return experiment.Figure8(env, sweep) })
	run("fig9", func() (*experiment.Figure, error) { return experiment.Figure9(env, sweep) })
	run("fig10", func() (*experiment.Figure, error) { return experiment.Figure10(env, sweep) })
	run("fig11", func() (*experiment.Figure, error) { return experiment.Figure11(env, sweep) })
	run("fig12", func() (*experiment.Figure, error) { return experiment.Figure12(env, sweep) })
	run("fig13", func() (*experiment.Figure, error) { return experiment.Figure13(env, sweep) })
	run("fig14", func() (*experiment.Figure, error) { return experiment.Figure14(env, sweep) })
	run("table3", func() (*experiment.Figure, error) { return experiment.Table3(env, sweep) })
}

// configsFor maps a scale name to an environment and sweep.
func configsFor(scale string) (experiment.EnvConfig, experiment.Sweep) {
	switch scale {
	case "paper":
		envCfg := experiment.DefaultEnvConfig()
		sweep := experiment.DefaultSweep()
		sweep.Base.DurationTicks = 1800
		return envCfg, sweep
	case "quick":
		netCfg := roadnet.DefaultConfig()
		netCfg.Side = 7000
		netCfg.GridStep = 350
		netCfg.Centers = 3
		netCfg.CenterRadius = 1400
		envCfg := experiment.DefaultEnvConfig()
		envCfg.Net = netCfg
		envCfg.Nodes = 3000
		envCfg.CalibNodes = 800
		envCfg.CalibTicks = 180
		base := experiment.DefaultRunConfig()
		base.L = 100
		base.WarmupTicks = 90
		base.DurationTicks = 600
		sweep := experiment.DefaultSweep()
		sweep.Base = base
		sweep.Ls = []int{13, 49, 100, 250}
		sweep.CostLs = []int{13, 49, 100, 250, 520}
		sweep.Radii = []float64{700, 1400, 2100, 2800, 3500}
		return envCfg, sweep
	default:
		fatal(fmt.Errorf("unknown scale %q (want quick or paper)", scale))
		panic("unreachable")
	}
}

func spaceArea(cfg experiment.EnvConfig) float64 {
	side := cfg.Net.Side
	if side == 0 {
		side = roadnet.DefaultConfig().Side
	}
	return side * side
}

// benchEntry records one figure's serial-vs-parallel comparison.
type benchEntry struct {
	ID         string  `json:"id"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// IdenticalOutput reports whether the rendered tables from the serial
	// and parallel runs were byte-identical — the determinism contract of
	// the parallel sweep runner.
	IdenticalOutput bool `json:"identical_output"`
}

// benchReport is the schema of the -json artifact (BENCH_PR1.json).
type benchReport struct {
	Command         string       `json:"command"`
	Scale           string       `json:"scale"`
	Nodes           int          `json:"nodes"`
	NumCPU          int          `json:"num_cpu"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Workers         int          `json:"parallel_workers"`
	Figures         []benchEntry `json:"figures"`
	TotalSerialMS   float64      `json:"total_serial_ms"`
	TotalParallelMS float64      `json:"total_parallel_ms"`
	TotalSpeedup    float64      `json:"total_speedup"`
	// Telemetry is present when -obs is set: instrumentation overhead and
	// the Evaluate-latency breakdown (see obsReport).
	Telemetry *obsReport `json:"telemetry,omitempty"`
}

func renderFigs(figs ...*experiment.Figure) string {
	var b strings.Builder
	for _, f := range figs {
		f.Render(&b)
	}
	return b.String()
}

// writeBenchReport generates every selected Run-based figure twice — once
// serially, once with the sweep's configured parallelism — and writes the
// wall-clock comparison to path. Figures whose tables embed measured times
// (fig14) or that are not sweep-based (fig1, fig3, table3) are excluded:
// they have no parallel path to compare.
func writeBenchReport(path string, env *experiment.Env, sweep experiment.Sweep, scale string, nodes int, wanted map[string]bool, all bool, obsRep *obsReport) error {
	type target struct {
		ids []string // -exp ids this target satisfies
		run func(sw experiment.Sweep) (string, error)
	}
	targets := []target{
		{[]string{"fig4", "fig5"}, func(sw experiment.Sweep) (string, error) {
			f4, f5, err := experiment.Figures4and5(env, sw)
			if err != nil {
				return "", err
			}
			return renderFigs(f4, f5), nil
		}},
		{[]string{"fig6"}, func(sw experiment.Sweep) (string, error) {
			f, err := experiment.Figure6or7(env, sw, workload.Inverse)
			if err != nil {
				return "", err
			}
			return renderFigs(f), nil
		}},
		{[]string{"fig7"}, func(sw experiment.Sweep) (string, error) {
			f, err := experiment.Figure6or7(env, sw, workload.Random)
			if err != nil {
				return "", err
			}
			return renderFigs(f), nil
		}},
	}
	simple := []struct {
		id string
		fn func(*experiment.Env, experiment.Sweep) (*experiment.Figure, error)
	}{
		{"fig8", experiment.Figure8},
		{"fig9", experiment.Figure9},
		{"fig10", experiment.Figure10},
		{"fig11", experiment.Figure11},
		{"fig12", experiment.Figure12},
		{"fig13", experiment.Figure13},
	}
	for _, s := range simple {
		fn := s.fn
		targets = append(targets, target{[]string{s.id}, func(sw experiment.Sweep) (string, error) {
			f, err := fn(env, sw)
			if err != nil {
				return "", err
			}
			return renderFigs(f), nil
		}})
	}

	workers := sweep.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		Command:    strings.Join(os.Args, " "),
		Scale:      scale,
		Nodes:      nodes,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Telemetry:  obsRep,
	}
	for _, tg := range targets {
		selected := all
		for _, id := range tg.ids {
			selected = selected || wanted[id]
		}
		if !selected {
			continue
		}
		id := strings.Join(tg.ids, "+")
		fmt.Fprintf(os.Stderr, "bench %-10s serial...", id)

		serialSweep := sweep
		serialSweep.Parallel = 1
		t0 := time.Now()
		serialOut, err := tg.run(serialSweep)
		if err != nil {
			return fmt.Errorf("%s (serial): %w", id, err)
		}
		serialMS := float64(time.Since(t0).Microseconds()) / 1e3

		fmt.Fprintf(os.Stderr, " %8.0fms  parallel×%d...", serialMS, workers)
		t0 = time.Now()
		parallelOut, err := tg.run(sweep)
		if err != nil {
			return fmt.Errorf("%s (parallel): %w", id, err)
		}
		parallelMS := float64(time.Since(t0).Microseconds()) / 1e3
		fmt.Fprintf(os.Stderr, " %8.0fms  identical=%v\n", parallelMS, serialOut == parallelOut)

		entry := benchEntry{
			ID:              id,
			SerialMS:        serialMS,
			ParallelMS:      parallelMS,
			IdenticalOutput: serialOut == parallelOut,
		}
		if parallelMS > 0 {
			entry.Speedup = serialMS / parallelMS
		}
		report.Figures = append(report.Figures, entry)
		report.TotalSerialMS += serialMS
		report.TotalParallelMS += parallelMS
	}
	if report.TotalParallelMS > 0 {
		report.TotalSpeedup = report.TotalSerialMS / report.TotalParallelMS
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (total speedup %.2f× with %d workers on %d CPUs)\n",
		path, report.TotalSpeedup, workers, report.NumCPU)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lirabench:", err)
	os.Exit(1)
}

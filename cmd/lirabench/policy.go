package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"lira/internal/controlplane"
	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/rng"
	"lira/internal/throttler"
)

// policyEntry is one (policy, z) cell of the -policy comparison: the
// modeled inaccuracy Σ nᵢ·Δᵢ and expenditure the control plane's plan
// assigns over one warmed statistics grid.
type policyEntry struct {
	Policy  string  `json:"policy"`
	Z       float64 `json:"z"`
	Regions int     `json:"regions"`
	// InAccuracy is the plan's modeled total inaccuracy (lower is better
	// at equal z); RelativeToLira normalizes it to the LIRA plan's.
	InAccuracy     float64 `json:"inaccuracy"`
	RelativeToLira float64 `json:"relative_to_lira"`
	Expenditure    float64 `json:"expenditure"`
	Budget         float64 `json:"budget"`
	BudgetMet      bool    `json:"budget_met"`
	ConfigMS       float64 `json:"config_ms"`
}

// policyReport is the schema of the -policyjson artifact (BENCH_PR5.json):
// the §4-style policy comparison at equal throttle fractions.
type policyReport struct {
	Command string        `json:"command"`
	Nodes   int           `json:"nodes"`
	Ticks   int           `json:"ticks"`
	L       int           `json:"l"`
	Zs      []float64     `json:"zs"`
	Entries []policyEntry `json:"entries"`
	// LiraBeatsBaselines reports whether the LIRA plan's modeled
	// inaccuracy was strictly below both region-oblivious baselines
	// (single-delta and uniform-delta) at every z — the paper's
	// qualitative §4 claim, checked mechanically. The uniform-grid
	// ablation is excluded: it shares GREEDYINCREMENT and may tie LIRA
	// within noise on synthetic workloads.
	LiraBeatsBaselines bool `json:"lira_beats_baselines"`
}

// clusterWorkload re-places most of a workload's nodes into a few dense
// hotspots (and slows them down so they stay there), giving the
// statistics grid the skewed density the paper's road networks produce —
// the regime where region-aware drill-down has structure to exploit. A
// spatially uniform workload makes all partitionings equivalent and the
// comparison degenerate.
func clusterWorkload(w *shardWorkload, seed uint64, space geo.Rect) {
	r := rng.New(seed).Split(7)
	centers := []geo.Point{
		{X: space.MinX + 0.2*space.Width(), Y: space.MinY + 0.3*space.Height()},
		{X: space.MinX + 0.7*space.Width(), Y: space.MinY + 0.6*space.Height()},
		{X: space.MinX + 0.4*space.Width(), Y: space.MinY + 0.8*space.Height()},
	}
	radius := space.Width() / 25
	for i := range w.pos {
		if i%5 == 4 {
			continue // every fifth node stays where uniform placement put it
		}
		c := centers[i%len(centers)]
		w.pos[i] = space.ClampPoint(geo.Point{
			X: c.X + r.Range(-radius, radius),
			Y: c.Y + r.Range(-radius, radius),
		})
		w.vel[i] = geo.Vector{X: r.Range(-3, 3), Y: r.Range(-3, 3)}
	}
}

// runPolicyBench warms one statistics grid by driving an engine over the
// deterministic bouncing-node workload, evaluates every built-in
// control-plane policy over that grid at a set of throttle fractions, and
// compares the modeled inaccuracies — the shape of the paper's §4
// strategy comparison, with the optimizer's own objective standing in for
// the simulated error. The comparison is deterministic under a fixed
// seed: every policy is a pure function of (grid, z, env).
func runPolicyBench(nodes, ticks, l int, seed uint64, jsonPath string) error {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	curve := fmodel.Hyperbolic(5, 100, 95)
	eng, err := engine.New(cqserver.Config{
		Space:     space,
		Nodes:     nodes,
		L:         l,
		Curve:     curve,
		QueueSize: nodes * 2,
	}, 1)
	if err != nil {
		return err
	}
	// A handful of range queries give the grid a query census, so the
	// drill-down has the m counts GRIDREDUCE weighs.
	eng.RegisterQueries(shardQueries(rng.New(seed).Split(42), space, 16))
	w := newShardWorkload(seed, nodes, space)
	clusterWorkload(w, seed, space)
	for tick := 1; tick <= ticks; tick++ {
		now := float64(tick)
		for _, u := range w.step(now) {
			if !eng.Ingest(u) {
				return fmt.Errorf("overflow at tick %d (queue sized for no-overflow)", tick)
			}
		}
		eng.Drain(-1)
		eng.ObserveStatistics(w.pos, w.speeds)
	}
	grid := eng.StatsGrid()

	env := controlplane.Env{L: l, Curve: curve, Fairness: throttler.NoFairness(curve), UseSpeed: true}
	zs := []float64{0.75, 0.5, 0.3}
	report := policyReport{
		Command:            strings.Join(os.Args, " "),
		Nodes:              nodes,
		Ticks:              ticks,
		L:                  l,
		Zs:                 zs,
		LiraBeatsBaselines: true,
	}
	pols := controlplane.Policies()
	for _, z := range zs {
		var liraInAcc float64
		entries := make([]policyEntry, 0, len(pols))
		for _, pol := range pols {
			t0 := time.Now()
			plan, err := controlplane.Evaluate(pol, grid, z, env)
			if err != nil {
				return fmt.Errorf("policy %s at z=%.2f: %w", pol.Name(), z, err)
			}
			elapsed := time.Since(t0)
			e := policyEntry{
				Policy:      plan.Policy,
				Z:           z,
				Regions:     len(plan.Partitioning.Regions),
				InAccuracy:  plan.Result.InAcc,
				Expenditure: plan.Result.Expenditure,
				Budget:      plan.Result.Budget,
				BudgetMet:   plan.Result.BudgetMet,
				ConfigMS:    float64(elapsed.Microseconds()) / 1e3,
			}
			if plan.Policy == "lira" {
				liraInAcc = e.InAccuracy
			}
			entries = append(entries, e)
		}
		for i := range entries {
			if liraInAcc > 0 {
				entries[i].RelativeToLira = entries[i].InAccuracy / liraInAcc
			}
			switch entries[i].Policy {
			case "single-delta", "uniform-delta":
				if entries[i].InAccuracy <= liraInAcc {
					report.LiraBeatsBaselines = false
				}
			}
		}
		report.Entries = append(report.Entries, entries...)
	}

	fmt.Printf("policy comparison (%d nodes, %d warmup ticks, l=%d)\n", nodes, ticks, l)
	fmt.Printf("%-14s %6s %8s %14s %10s %12s %10s %s\n",
		"policy", "z", "regions", "inaccuracy", "vs lira", "expenditure", "config", "budget")
	for _, e := range report.Entries {
		fmt.Printf("%-14s %6.2f %8d %14.0f %9.2f× %12.0f %8.2fms %v\n",
			e.Policy, e.Z, e.Regions, e.InAccuracy, e.RelativeToLira,
			e.Expenditure, e.ConfigMS, e.BudgetMet)
	}
	fmt.Printf("lira beats region-oblivious baselines everywhere: %v\n", report.LiraBeatsBaselines)

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}

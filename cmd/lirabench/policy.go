package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"lira/internal/controlplane"
	"lira/internal/experiment"
	"lira/internal/roadnet"
)

// measuredReport is the schema of the -policyjson artifact
// (BENCH_PR10.json): the §4 strategy comparison on *measured* errors —
// every cell is one full reference-vs-candidate simulation and E^C/E^P
// are the §4.1 accuracy metrics against the Δ⊢ reference, not the
// optimizer's modeled objective. The report carries no wall-clock
// fields, so it is byte-deterministic under a fixed seed and command
// line.
type measuredReport struct {
	Command       string `json:"command"`
	Nodes         int    `json:"nodes"`
	WarmupTicks   int    `json:"warmup_ticks"`
	DurationTicks int    `json:"duration_ticks"`
	L             int    `json:"l"`
	Seed          uint64 `json:"seed"`
	// Workloads are the traffic sources measured: "" is the road-network
	// trace, the rest are workload catalog scenarios.
	Workloads []string                  `json:"workloads"`
	Policies  []string                  `json:"policies"`
	Zs        []float64                 `json:"zs"`
	Cells     []experiment.MeasuredCell `json:"cells"`
	// LiraBeatsBaselines reports whether lira's measured containment
	// error was no worse than both region-oblivious baselines
	// (random-drop and single-delta) at every (workload, z) — the
	// paper's qualitative §4 claim, checked on measurements.
	LiraBeatsBaselines bool `json:"lira_beats_baselines"`
}

// runPolicyBench runs the measured policy comparison: every canonical
// registry policy over every configured traffic source at equal throttle
// fractions, one full simulation per cell (experiment.Measure). The
// comparison is deterministic under a fixed seed at any parallelism.
func runPolicyBench(nodes, ticks, l int, seed uint64, parallel int, jsonPath string) error {
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 5000
	netCfg.GridStep = 400
	netCfg.Centers = 2
	netCfg.CenterRadius = 1000
	netCfg.Seed = seed
	env, err := experiment.NewEnv(experiment.EnvConfig{
		Net:        netCfg,
		Nodes:      nodes,
		TraceSeed:  seed + 1,
		CalibNodes: 400,
		CalibTicks: 120,
	})
	if err != nil {
		return err
	}
	base := experiment.DefaultRunConfig()
	base.L = l
	base.WarmupTicks = 40
	base.DurationTicks = ticks
	base.EvalEvery = 30
	base.ReAdaptEvery = 60
	mcfg := experiment.MeasuredConfig{
		Base:      base,
		Zs:        []float64{0.55, 0.5, 0.3},
		Policies:  controlplane.RegisteredNames(),
		Workloads: []string{"", "blackout"},
		Parallel:  parallel,
	}
	mc, err := experiment.Measure(env, mcfg)
	if err != nil {
		return err
	}

	report := measuredReport{
		Command:            strings.Join(append([]string{"lirabench"}, os.Args[1:]...), " "),
		Nodes:              nodes,
		WarmupTicks:        base.WarmupTicks,
		DurationTicks:      ticks,
		L:                  l,
		Seed:               seed,
		Workloads:          mc.Workloads,
		Policies:           mc.Policies,
		Zs:                 mc.Zs,
		Cells:              mc.Cells,
		LiraBeatsBaselines: mc.LiraBeatsBaselines(),
	}

	fmt.Printf("measured policy comparison (%d nodes, %d measured ticks, l=%d)\n", nodes, ticks, l)
	fmt.Printf("%-12s %-14s %6s %10s %10s %9s %9s %s\n",
		"workload", "policy", "z", "EC", "EP_m", "vs lira", "achieved", "budget")
	for _, c := range report.Cells {
		w := c.Workload
		if w == "" {
			w = "trace"
		}
		fmt.Printf("%-12s %-14s %6.2f %10.4f %10.2f %8.2f× %9.3f %v\n",
			w, c.Policy, c.Z, c.EC, c.EP, c.RelECLira, c.AchievedFraction, c.BudgetMet)
	}
	fmt.Printf("lira beats region-oblivious baselines on measured E^C everywhere: %v\n",
		report.LiraBeatsBaselines)

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}

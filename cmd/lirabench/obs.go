package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"lira/internal/experiment"
	"lira/internal/telemetry"
)

// obsStage is the aggregate timing of one instrumented pipeline stage.
type obsStage struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanUS  float64 `json:"mean_us"`
}

// obsReport quantifies the telemetry subsystem's cost and yield: the same
// run is executed with the hub detached and attached, and the wall-clock
// delta bounds the instrumentation overhead on the Evaluate/Adapt hot
// paths. The histograms and journal counts come from the enabled run.
type obsReport struct {
	RunDisabledMS float64 `json:"run_disabled_ms"`
	RunEnabledMS  float64 `json:"run_enabled_ms"`
	// OverheadPct is (enabled - disabled) / disabled × 100; each side is
	// the best of three repetitions after a shared warmup run, to damp
	// scheduler and allocator noise.
	OverheadPct float64 `json:"overhead_pct"`
	// IdenticalOutput reports whether the disabled and enabled runs
	// produced the same accuracy metrics and update accounting — the
	// telemetry passivity contract.
	IdenticalOutput bool `json:"identical_output"`

	Evaluations       int64                       `json:"evaluations"`
	EvaluateHistogram telemetry.HistogramSnapshot `json:"evaluate_histogram"`
	Stages            []obsStage                  `json:"stages"`
	JournalRecords    uint64                      `json:"journal_records"`
}

// obsStageNames maps the instrumented histograms to report labels, in
// pipeline order: the two Evaluate sub-stages, then the two Adapt stages.
var obsStageNames = [][2]string{
	{"predict", "lira_evaluate_predict_seconds"},
	{"scan", "lira_evaluate_scan_seconds"},
	{"gridreduce", "lira_gridreduce_seconds"},
	{"set-throttlers", "lira_set_throttlers_seconds"},
}

// resultFingerprint folds a run's deterministic outputs into a comparable
// string (timings excluded — they are the one legitimately nondeterministic
// field).
func resultFingerprint(r *experiment.Result) string {
	return fmt.Sprintf("%v z=%v ach=%v budget=%v ce=%v/%v/%v pos=%v ref=%d sent=%d adm=%d",
		r.Strategy, r.Z, r.AchievedFraction, r.BudgetMet,
		r.Metrics.MeanContainment, r.Metrics.StdDevContainment, r.Metrics.CovContainment,
		r.Metrics.MeanPosition, r.ReferenceUpdates, r.SentUpdates, r.AdmittedUpdates)
}

// runObs measures the telemetry overhead on sweep.Base: after one untimed
// warmup, three repetitions with the hub detached and three with it
// attached (fresh hub each time so the histograms reflect a single run),
// keeping the best wall clock of each mode.
func runObs(env *experiment.Env, base experiment.RunConfig) (*obsReport, error) {
	const reps = 3
	measure := func(withHub bool) (time.Duration, *telemetry.Hub, string, error) {
		var best time.Duration
		var hub *telemetry.Hub
		var fp string
		for i := 0; i < reps; i++ {
			cfg := base
			var h *telemetry.Hub
			if withHub {
				h = telemetry.NewHub(0)
				cfg.Telemetry = h
			}
			t0 := time.Now()
			res, err := experiment.Run(env, cfg)
			d := time.Since(t0)
			if err != nil {
				return 0, nil, "", err
			}
			if i == 0 || d < best {
				best = d
			}
			hub, fp = h, resultFingerprint(res)
		}
		return best, hub, fp, nil
	}

	fmt.Fprintf(os.Stderr, "obs: measuring telemetry overhead (%d reps per mode)...", reps)
	if _, err := experiment.Run(env, base); err != nil { // warmup
		return nil, fmt.Errorf("obs (warmup): %w", err)
	}
	offD, _, offFP, err := measure(false)
	if err != nil {
		return nil, fmt.Errorf("obs (telemetry off): %w", err)
	}
	onD, hub, onFP, err := measure(true)
	if err != nil {
		return nil, fmt.Errorf("obs (telemetry on): %w", err)
	}
	fmt.Fprintf(os.Stderr, " off=%v on=%v\n", offD.Round(time.Millisecond), onD.Round(time.Millisecond))

	rep := &obsReport{
		RunDisabledMS:   float64(offD.Microseconds()) / 1e3,
		RunEnabledMS:    float64(onD.Microseconds()) / 1e3,
		IdenticalOutput: offFP == onFP,
		JournalRecords:  hub.Journal.Seq(),
	}
	if offD > 0 {
		rep.OverheadPct = 100 * float64(onD-offD) / float64(offD)
	}
	snap := hub.Registry.Snapshot()
	rep.EvaluateHistogram = snap.Histograms["lira_evaluate_seconds"]
	rep.Evaluations = rep.EvaluateHistogram.Count
	for _, st := range obsStageNames {
		h, ok := snap.Histograms[st[1]]
		if !ok {
			continue
		}
		s := obsStage{Name: st[0], Count: h.Count, TotalMS: h.Sum * 1e3}
		if h.Count > 0 {
			s.MeanUS = h.Sum / float64(h.Count) * 1e6
		}
		rep.Stages = append(rep.Stages, s)
	}
	return rep, nil
}

// printObs renders the report as text: the Evaluate-latency histogram
// followed by the per-stage breakdown and the overhead verdict.
func printObs(w io.Writer, rep *obsReport) {
	fmt.Fprintf(w, "== telemetry observability report ==\n")
	fmt.Fprintf(w, "Evaluate latency (%d evaluations, total %.1f ms):\n",
		rep.Evaluations, rep.EvaluateHistogram.Sum*1e3)
	h := rep.EvaluateHistogram
	lower := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			if i < len(h.Bounds) {
				lower = h.Bounds[i]
			}
			continue
		}
		upper := "+Inf"
		if i < len(h.Bounds) {
			upper = fmt.Sprintf("%gms", h.Bounds[i]*1e3)
		}
		fmt.Fprintf(w, "  (%gms, %s]  %d\n", lower*1e3, upper, c)
		if i < len(h.Bounds) {
			lower = h.Bounds[i]
		}
	}
	fmt.Fprintf(w, "stages:\n")
	for _, s := range rep.Stages {
		fmt.Fprintf(w, "  %-14s  count %4d  total %8.1f ms  mean %8.1f µs\n",
			s.Name, s.Count, s.TotalMS, s.MeanUS)
	}
	fmt.Fprintf(w, "journal records     %d\n", rep.JournalRecords)
	fmt.Fprintf(w, "run wall clock      off %.0f ms, on %.0f ms (overhead %+.2f%%)\n",
		rep.RunDisabledMS, rep.RunEnabledMS, rep.OverheadPct)
	fmt.Fprintf(w, "identical output    %v\n", rep.IdenticalOutput)
}

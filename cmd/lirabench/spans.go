package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"lira/internal/experiment"
	"lira/internal/roadnet"
	"lira/internal/shedding"
	"lira/internal/spans"
	"lira/internal/telemetry"
)

// spansReport quantifies the span tracer's cost at each arming level.
// The same deterministic run executes four ways — no telemetry at all,
// hub attached but no tracer (the spans-disabled steady state every
// instrumentation site pays: one atomic load and a nil branch), tracer
// attached with head sampling keeping 1-in-8 traces, and tracer
// recording everything — each best-of-three after a shared warmup.
type spansReport struct {
	Nodes int    `json:"nodes"`
	Ticks int    `json:"ticks"`
	Seed  uint64 `json:"seed"`

	RunPlainMS   float64 `json:"run_plain_ms"`
	RunHubMS     float64 `json:"run_hub_ms"`
	RunSampledMS float64 `json:"run_sampled_ms"`
	RunTracedMS  float64 `json:"run_traced_ms"`

	// DisabledOverheadPct is (hub − plain) / plain × 100: the cost of the
	// entire passive telemetry layer including every span site's nil-
	// tracer branch — the upper bound on what a deployment pays with
	// tracing compiled in but not armed. The check gate holds this ≤ 1%.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	// SampledOverheadPct and TracedOverheadPct are measured against the
	// hub-only run, isolating the tracer itself from the telemetry it
	// rides on.
	SampledOverheadPct float64 `json:"sampled_overhead_pct"`
	TracedOverheadPct  float64 `json:"traced_overhead_pct"`

	// IdenticalOutput reports whether all four arming levels produced the
	// same accuracy metrics and update accounting (the passivity
	// contract), and IdenticalExports whether a repeated fully-traced run
	// re-exported byte-identical trace JSON (the determinism contract).
	IdenticalOutput  bool `json:"identical_output"`
	IdenticalExports bool `json:"identical_exports"`

	Spans      int              `json:"spans"`
	Roots      uint64           `json:"roots"`
	Evicted    int64            `json:"evicted"`
	ExportSize int              `json:"export_bytes"`
	Categories []spans.CatCount `json:"categories"`
}

// runSpansOverhead measures the span tracer's overhead on a small
// simulated sweep and writes the JSON report to out (stdout when empty).
func runSpansOverhead(nodes, ticks int, seed uint64, out string) error {
	netCfg := roadnet.DefaultConfig()
	netCfg.Side = 6000
	netCfg.GridStep = 300
	netCfg.Seed = seed
	envCfg := experiment.DefaultEnvConfig()
	envCfg.Net = netCfg
	envCfg.Nodes = nodes
	envCfg.TraceSeed = seed + 1
	envCfg.CalibNodes = min(nodes, 400)
	envCfg.CalibTicks = 120
	fmt.Fprintf(os.Stderr, "spans: building environment (%d nodes)...\n", nodes)
	env, err := experiment.NewEnv(envCfg)
	if err != nil {
		return err
	}
	base := experiment.DefaultRunConfig()
	base.Strategy = shedding.Lira
	base.L = 49
	base.WarmupTicks = 60
	base.DurationTicks = ticks
	base.Seed = seed + 2

	const reps = 3
	// measure runs the configured arming level reps times and keeps the
	// best wall clock; sample 0 = no hub, 1 = trace everything, N>1 =
	// head-sample 1-in-N, -1 = hub without a tracer.
	measure := func(sample int) (time.Duration, *spans.Tracer, string, error) {
		var best time.Duration
		var tracer *spans.Tracer
		var fp string
		for i := 0; i < reps; i++ {
			cfg := base
			var tr *spans.Tracer
			if sample != 0 {
				hub := telemetry.NewHub(0)
				cfg.Telemetry = hub
				if sample > 0 {
					tr = spans.New(spans.Config{Seed: seed, Sample: sample})
					hub.SetSpans(tr)
				}
			}
			t0 := time.Now()
			res, err := experiment.Run(env, cfg)
			d := time.Since(t0)
			if err != nil {
				return 0, nil, "", err
			}
			if i == 0 || d < best {
				best = d
			}
			tracer, fp = tr, resultFingerprint(res)
		}
		return best, tracer, fp, nil
	}

	fmt.Fprintf(os.Stderr, "spans: measuring overhead (%d reps per arming level)...", reps)
	if _, err := experiment.Run(env, base); err != nil { // warmup
		return fmt.Errorf("spans (warmup): %w", err)
	}
	plainD, _, plainFP, err := measure(0)
	if err != nil {
		return fmt.Errorf("spans (plain): %w", err)
	}
	hubD, _, hubFP, err := measure(-1)
	if err != nil {
		return fmt.Errorf("spans (hub): %w", err)
	}
	sampledD, _, sampledFP, err := measure(8)
	if err != nil {
		return fmt.Errorf("spans (sampled): %w", err)
	}
	tracedD, tracer, tracedFP, err := measure(1)
	if err != nil {
		return fmt.Errorf("spans (traced): %w", err)
	}
	fmt.Fprintf(os.Stderr, " plain=%v hub=%v sampled=%v traced=%v\n",
		plainD.Round(time.Millisecond), hubD.Round(time.Millisecond),
		sampledD.Round(time.Millisecond), tracedD.Round(time.Millisecond))

	// Determinism: a repeated fully-traced run must re-export the same
	// bytes.
	var exportA bytes.Buffer
	if err := tracer.WriteJSON(&exportA); err != nil {
		return err
	}
	cfg := base
	hub := telemetry.NewHub(0)
	cfg.Telemetry = hub
	tr2 := spans.New(spans.Config{Seed: seed, Sample: 1})
	hub.SetSpans(tr2)
	if _, err := experiment.Run(env, cfg); err != nil {
		return err
	}
	var exportB bytes.Buffer
	if err := tr2.WriteJSON(&exportB); err != nil {
		return err
	}

	rep := &spansReport{
		Nodes:            nodes,
		Ticks:            ticks,
		Seed:             seed,
		RunPlainMS:       float64(plainD.Microseconds()) / 1e3,
		RunHubMS:         float64(hubD.Microseconds()) / 1e3,
		RunSampledMS:     float64(sampledD.Microseconds()) / 1e3,
		RunTracedMS:      float64(tracedD.Microseconds()) / 1e3,
		IdenticalOutput:  plainFP == hubFP && hubFP == sampledFP && sampledFP == tracedFP,
		IdenticalExports: bytes.Equal(exportA.Bytes(), exportB.Bytes()),
		Spans:            tracer.Len(),
		Roots:            tracer.Roots(),
		Evicted:          tracer.Evicted(),
		ExportSize:       exportA.Len(),
		Categories:       tracer.ByCategory(),
	}
	if plainD > 0 {
		rep.DisabledOverheadPct = 100 * float64(hubD-plainD) / float64(plainD)
	}
	if hubD > 0 {
		rep.SampledOverheadPct = 100 * float64(sampledD-hubD) / float64(hubD)
		rep.TracedOverheadPct = 100 * float64(tracedD-hubD) / float64(hubD)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out != "" {
		printSpansReport(os.Stderr, rep)
	}
	return nil
}

// printSpansReport renders the human-readable summary.
func printSpansReport(w io.Writer, rep *spansReport) {
	fmt.Fprintf(w, "== span tracing overhead report ==\n")
	fmt.Fprintf(w, "run wall clock      plain %.0f ms, hub %.0f ms, sampled(1/8) %.0f ms, traced %.0f ms\n",
		rep.RunPlainMS, rep.RunHubMS, rep.RunSampledMS, rep.RunTracedMS)
	fmt.Fprintf(w, "overhead            disabled %+.2f%% (vs plain), sampled %+.2f%%, traced %+.2f%% (vs hub)\n",
		rep.DisabledOverheadPct, rep.SampledOverheadPct, rep.TracedOverheadPct)
	fmt.Fprintf(w, "spans captured      %d (%d roots, %d evicted, export %d B)\n",
		rep.Spans, rep.Roots, rep.Evicted, rep.ExportSize)
	for _, c := range rep.Categories {
		fmt.Fprintf(w, "  %-14s %d\n", c.Cat, c.N)
	}
	fmt.Fprintf(w, "identical output    %v\n", rep.IdenticalOutput)
	fmt.Fprintf(w, "identical exports   %v\n", rep.IdenticalExports)
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lira/internal/admission"
	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/telemetry"
	"lira/internal/workload"
)

// admissionTransition is one journaled rung change in the ladder
// timeline.
type admissionTransition struct {
	Tick      int     `json:"tick"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	QueueFrac float64 `json:"queue_frac"`
	Rate      float64 `json:"offered_rate"`
}

// admissionReport is the schema of the -admissionjson artifact
// (BENCH_PR7.json): one seeded flash-crowd overload driven through the
// degradation ladder on model time, plus the healthy-state overhead
// comparison.
type admissionReport struct {
	Command string `json:"command"`
	Nodes   int    `json:"nodes"`
	Ticks   int    `json:"ticks"`
	Seed    uint64 `json:"seed"`

	BaseRate    float64 `json:"base_rate"`
	PeakRate    float64 `json:"peak_rate"`
	ServiceRate int     `json:"service_rate"`

	Transitions    []admissionTransition `json:"transitions"`
	EscalationTick int                   `json:"escalation_tick"` // first tick at ≥ shed
	PeakState      string                `json:"peak_state"`
	RecoveryTick   int                   `json:"recovery_tick"`  // first healthy tick after the peak
	RecoveryTicks  int                   `json:"recovery_ticks"` // ticks from end of overload to healthy

	PreShed        int64   `json:"pre_shed"`        // records rejected ahead of the rings
	QueueShed      int64   `json:"queue_shed"`      // records shed by ring overflow
	DegradedEvals  int64   `json:"degraded_evals"`  // prediction-only Evaluate rounds
	JournalRecords int     `json:"journal_records"` // admission records journaled
	MinZCap        float64 `json:"min_z_cap"`       // tightest effective z the ladder enforced

	// HealthyOverheadPct is the controller's healthy-path work — one
	// AdmitN per batch plus one Observe per tick, timed in isolation —
	// as a fraction of the baseline simulation tick (ingest + drain +
	// evaluate at base rate). The acceptance budget is ≤ 1%. The
	// paired on/off tick times are reported alongside for reference;
	// their difference sits below the scheduler-noise floor, which is
	// exactly why the budget is checked against the direct measurement.
	HealthyOverheadPct float64 `json:"healthy_overhead_pct"`
	OverheadBudgetMet  bool    `json:"overhead_budget_met"`
	AdmissionOpMS      float64 `json:"healthy_admission_op_ms"`
	HealthyTickOnMS    float64 `json:"healthy_tick_on_ms"`
	HealthyTickOffMS   float64 `json:"healthy_tick_off_ms"`
}

// admissionSim bundles one engine + ladder + flash crowd on model time.
type admissionSim struct {
	eng   engine.Engine
	adm   *admission.Controller
	crowd *workload.FlashCrowd
	hub   *telemetry.Hub
	now   float64

	service int // drain budget per tick (the fixed consumer speed)

	buf []cqserver.Update // per-tick emission scratch
}

const admissionSpaceSide = 2000.0

func newAdmissionSim(nodes int, seed uint64, withLadder bool) (*admissionSim, error) {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: admissionSpaceSide, MaxY: admissionSpaceSide}
	base := float64(nodes) / 10
	crowd, err := workload.NewFlashCrowd(space, workload.FlashCrowdConfig{
		Nodes:    nodes,
		BaseRate: base,
		PeakRate: 4 * base,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	sim := &admissionSim{crowd: crowd, service: int(2 * base)}
	sim.hub = telemetry.NewHub(0)
	sim.hub.SetClock(func() float64 { return sim.now })
	eng, err := engine.New(cqserver.Config{
		Space:     space,
		Nodes:     nodes,
		L:         13,
		QueueSize: int(8 * base),
		Curve:     fmodel.Hyperbolic(5, 100, 19),
		Telemetry: sim.hub,
	}, 1)
	if err != nil {
		return nil, err
	}
	sim.eng = eng
	queries, err := workload.GenerateQueries(space, nil, workload.QueryConfig{
		Count: 16, SideLength: admissionSpaceSide / 8, Distribution: workload.Random, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	eng.RegisterQueries(queries)
	if withLadder {
		adm, err := admission.New(admission.Config{
			// Queue occupancy drives the walk; the process-health signals
			// are disabled so the bench is a pure function of the seed.
			Thresholds:    admission.Thresholds{QueueFrac: [3]float64{0.50, 0.80, 0.95}},
			EscalateAfter: 2,
			RecoverAfter:  5,
			Actions:       eng,
			Telemetry:     sim.hub,
		})
		if err != nil {
			return nil, err
		}
		sim.adm = adm
		eng.ControlPlane().SetZClamp(adm.ClampZ)
	}
	return sim, nil
}

// tick advances the simulation one model second: emit the crowd's
// reports, gate them through the ladder (oldest-first pre-shed), walk
// the ladder on the pre-drain occupancy, then drain at the fixed service
// rate and evaluate. Returns the post-ingest queue occupancy.
func (s *admissionSim) tick() float64 {
	s.now++
	s.buf = s.buf[:0]
	s.crowd.Emit(s.now, func(node int, pos geo.Point, vel geo.Vector) {
		s.buf = append(s.buf, cqserver.Update{
			Node:   node,
			Report: motion.Report{Pos: pos, Vel: vel, Time: s.now},
		})
	})
	admit := len(s.buf)
	if s.adm != nil {
		admit = s.adm.AdmitN(len(s.buf))
	}
	for _, u := range s.buf[len(s.buf)-admit:] {
		s.eng.IngestShedOldest(u)
	}
	occ := 0.0
	if c := s.eng.QueueCap(); c > 0 {
		occ = float64(s.eng.QueueLen()) / float64(c)
	}
	if s.adm != nil {
		s.adm.Observe(admission.Signals{QueueFrac: occ})
	}
	s.eng.Drain(s.service)
	s.eng.Evaluate(s.now)
	return occ
}

// runAdmissionBench drives the seeded flash-crowd overload through the
// degradation ladder and writes the BENCH_PR7 report.
func runAdmissionBench(nodes, ticks int, seed uint64, outPath string) error {
	sim, err := newAdmissionSim(nodes, seed, true)
	if err != nil {
		return err
	}
	if ticks <= 0 {
		// The envelope plus a recovery tail long enough for the drain and
		// the damped walk home.
		ticks = sim.crowd.Ticks() + 60
	}
	rep := admissionReport{
		Command:        strings.Join(append([]string{"lirabench"}, os.Args[1:]...), " "),
		Nodes:          nodes,
		Ticks:          ticks,
		Seed:           seed,
		BaseRate:       sim.crowd.Rate(0),
		ServiceRate:    sim.service,
		EscalationTick: -1,
		RecoveryTick:   -1,
		MinZCap:        1,
	}
	for t := 0; t < ticks; t++ {
		if r := sim.crowd.Rate(t); r > rep.PeakRate {
			rep.PeakRate = r
		}
	}

	overloadEnd := sim.crowd.Ticks()
	peak := admission.Healthy
	prev := admission.Healthy
	for t := 1; t <= ticks; t++ {
		occ := sim.tick()
		st := sim.adm.State()
		if st != prev {
			rep.Transitions = append(rep.Transitions, admissionTransition{
				Tick: t, From: prev.String(), To: st.String(),
				QueueFrac: occ, Rate: sim.crowd.Rate(t - 1),
			})
			prev = st
		}
		if st > peak {
			peak = st
		}
		if rep.EscalationTick < 0 && st >= admission.Shed {
			rep.EscalationTick = t
		}
		if z := sim.adm.ClampZ(1); z < rep.MinZCap {
			rep.MinZCap = z
		}
		if rep.EscalationTick > 0 && rep.RecoveryTick < 0 && t > overloadEnd && st == admission.Healthy {
			rep.RecoveryTick = t
		}
	}
	rep.PeakState = peak.String()
	if rep.RecoveryTick > 0 {
		rep.RecoveryTicks = rep.RecoveryTick - overloadEnd
	}
	rep.PreShed = sim.adm.PreShed()
	rep.QueueShed = sim.eng.Dropped()
	rep.DegradedEvals = sim.hub.Registry.Counter("lira_evaluate_degraded_total").Value()
	rep.JournalRecords = sim.hub.Journal.CountKind(telemetry.KindAdmission)

	// Healthy-state overhead: the same simulation pinned to base rate
	// (no surge ⇒ the ladder never leaves healthy), ladder in vs out of
	// the path, plus a direct timing of the per-tick controller work.
	onMS, offMS, err := admissionHealthyTickCost(nodes, seed)
	if err != nil {
		return err
	}
	opMS, err := admissionOpCost(int(rep.BaseRate))
	if err != nil {
		return err
	}
	rep.HealthyTickOnMS, rep.HealthyTickOffMS = onMS, offMS
	rep.AdmissionOpMS = opMS
	if offMS > 0 {
		rep.HealthyOverheadPct = opMS / offMS * 100
	}
	rep.OverheadBudgetMet = rep.HealthyOverheadPct <= 1.0

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"wrote %s (peak=%s escalation@%d recovery@%d preshed=%d overhead=%.3f%%)\n",
		outPath, rep.PeakState, rep.EscalationTick, rep.RecoveryTick, rep.PreShed, rep.HealthyOverheadPct)
	return nil
}

// admissionHealthyTickCost measures the per-tick wall cost of the
// steady-state (healthy) simulation with and without the admission
// controller in the path. The ladder never escalates at base rate, so
// the comparison isolates the healthy overhead: one AdmitN fast path
// per batch plus one Observe per tick. The on/off runs are interleaved
// (on, off, on, off, ...) and the best run per side is kept, so slow
// drift — GC cycles, CPU frequency scaling — cannot land on one side
// and masquerade as controller cost.
func admissionHealthyTickCost(nodes int, seed uint64) (onMS, offMS float64, err error) {
	const runs, ticks = 7, 400
	run := func(withLadder bool) (float64, error) {
		sim, err := newAdmissionSim(nodes, seed, withLadder)
		if err != nil {
			return 0, err
		}
		for i := 0; i < ticks/4; i++ { // warm the caches and the allocator
			sim.tickHealthy()
		}
		runtime.GC() // keep collection pauses out of the timed window
		t0 := time.Now()
		for i := 0; i < ticks; i++ {
			sim.tickHealthy()
		}
		return float64(time.Since(t0).Microseconds()) / 1e3 / ticks, nil
	}
	best := func(cur, ms float64) float64 {
		if cur == 0 || ms < cur {
			return ms
		}
		return cur
	}
	for r := 0; r < runs; r++ {
		on, err := run(true)
		if err != nil {
			return 0, 0, err
		}
		off, err := run(false)
		if err != nil {
			return 0, 0, err
		}
		onMS, offMS = best(onMS, on), best(offMS, off)
	}
	return onMS, offMS, nil
}

// admissionOpCost times the controller's entire healthy-path work for
// one tick — the AdmitN fast path over the tick's batch plus one
// Observe (threshold walk, gauge updates, journal append) against a
// live telemetry hub — in isolation. The paired tick comparison cannot
// resolve this sub-microsecond delta under scheduler noise; the direct
// measurement can, so the overhead budget is checked against it.
func admissionOpCost(batch int) (float64, error) {
	hub := telemetry.NewHub(0)
	tick := 0.0
	hub.SetClock(func() float64 { return tick })
	adm, err := admission.New(admission.Config{
		Thresholds: admission.Thresholds{QueueFrac: [3]float64{0.50, 0.80, 0.95}},
		Telemetry:  hub,
	})
	if err != nil {
		return 0, err
	}
	const iters = 50000
	sig := admission.Signals{QueueFrac: 0.10}
	runtime.GC()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		tick++
		adm.AdmitN(batch)
		adm.Observe(sig)
	}
	return float64(time.Since(t0).Microseconds()) / 1e3 / iters, nil
}

// tickHealthy is tick with the crowd pinned to base rate: the emission
// count is the envelope's t=0 rate, so the queue never backs up and the
// ladder (when present) stays healthy.
func (s *admissionSim) tickHealthy() {
	s.now++
	s.buf = s.buf[:0]
	want := int(s.crowd.Rate(0) + 0.5)
	s.crowd.Emit(s.now, func(node int, pos geo.Point, vel geo.Vector) {
		if len(s.buf) >= want {
			return
		}
		s.buf = append(s.buf, cqserver.Update{
			Node:   node,
			Report: motion.Report{Pos: pos, Vel: vel, Time: s.now},
		})
	})
	admit := len(s.buf)
	if s.adm != nil {
		admit = s.adm.AdmitN(len(s.buf))
	}
	for _, u := range s.buf[len(s.buf)-admit:] {
		s.eng.IngestShedOldest(u)
	}
	occ := 0.0
	if c := s.eng.QueueCap(); c > 0 {
		occ = float64(s.eng.QueueLen()) / float64(c)
	}
	if s.adm != nil {
		s.adm.Observe(admission.Signals{QueueFrac: occ})
	}
	s.eng.Drain(s.service)
	s.eng.Evaluate(s.now)
}

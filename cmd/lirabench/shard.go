package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lira/internal/cqserver"
	"lira/internal/engine"
	"lira/internal/fmodel"
	"lira/internal/geo"
	"lira/internal/motion"
	"lira/internal/rng"
	"lira/internal/shard"
)

// shardEntry is one shard count's measurement in the -shards benchmark.
type shardEntry struct {
	K          int     `json:"k"`
	IngestMS   float64 `json:"ingest_ms"`
	DrainMS    float64 `json:"drain_ms"`
	EvaluateMS float64 `json:"evaluate_ms"`
	TotalMS    float64 `json:"total_ms"`
	// UpdatesPerSec is ingest+drain throughput over the whole run.
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Applied       int64   `json:"updates_applied"`
	Compactions   int64   `json:"index_compactions"`
	// ResultHash fingerprints every evaluation round's results;
	// IdenticalToK1 is the cross-K determinism check.
	ResultHash    uint64  `json:"result_hash"`
	IdenticalToK1 bool    `json:"identical_to_k1"`
	SpeedupVsK1   float64 `json:"speedup_vs_k1"`
}

// shardReport is the schema of the -shardjson artifact (BENCH_PR4.json).
type shardReport struct {
	Command    string       `json:"command"`
	Nodes      int          `json:"nodes"`
	Ticks      int          `json:"ticks"`
	Queries    int          `json:"queries"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Entries    []shardEntry `json:"shards"`
	// BaselineHash is the unsharded cqserver.Server's result fingerprint
	// over the identical workload; every entry must match it.
	BaselineHash    uint64  `json:"baseline_hash"`
	AllIdentical    bool    `json:"all_identical"`
	BaselineTotalMS float64 `json:"baseline_total_ms"`
}

// parseShardList parses "1,2,4,8" into shard counts.
func parseShardList(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// shardWorkload generates the deterministic bouncing-node update stream
// shared by every engine in the comparison.
type shardWorkload struct {
	r      *rng.Rand
	space  geo.Rect
	pos    []geo.Point
	vel    []geo.Vector
	speeds []float64
}

func newShardWorkload(seed uint64, nodes int, space geo.Rect) *shardWorkload {
	w := &shardWorkload{
		r:      rng.New(seed),
		space:  space,
		pos:    make([]geo.Point, nodes),
		vel:    make([]geo.Vector, nodes),
		speeds: make([]float64, nodes),
	}
	for i := range w.pos {
		w.pos[i] = geo.Point{X: w.r.Range(space.MinX, space.MaxX), Y: w.r.Range(space.MinY, space.MaxY)}
		w.vel[i] = geo.Vector{X: w.r.Range(-30, 30), Y: w.r.Range(-30, 30)}
	}
	return w
}

func (w *shardWorkload) step(t float64) []cqserver.Update {
	var ups []cqserver.Update
	for i := range w.pos {
		w.pos[i].X += w.vel[i].X
		w.pos[i].Y += w.vel[i].Y
		if w.pos[i].X < w.space.MinX || w.pos[i].X > w.space.MaxX {
			w.vel[i].X = -w.vel[i].X
			w.pos[i].X += 2 * w.vel[i].X
		}
		if w.pos[i].Y < w.space.MinY || w.pos[i].Y > w.space.MaxY {
			w.vel[i].Y = -w.vel[i].Y
			w.pos[i].Y += 2 * w.vel[i].Y
		}
		w.pos[i] = w.space.ClampPoint(w.pos[i])
		w.speeds[i] = math.Hypot(w.vel[i].X, w.vel[i].Y)
		if w.r.Bool(0.5) {
			ups = append(ups, cqserver.Update{
				Node:   i,
				Report: motion.Report{Pos: w.pos[i], Vel: w.vel[i], Time: t},
			})
		}
	}
	return ups
}

func shardQueries(r *rng.Rand, space geo.Rect, n int) []geo.Rect {
	qs := []geo.Rect{space}
	for len(qs) < n {
		x0, y0 := r.Range(space.MinX, space.MaxX), r.Range(space.MinY, space.MaxY)
		qs = append(qs, geo.Rect{
			MinX: x0, MinY: y0,
			MaxX: math.Min(space.MaxX, x0+r.Range(50, space.Width()/2)),
			MaxY: math.Min(space.MaxY, y0+r.Range(50, space.Height()/2)),
		})
	}
	return qs
}

func hashResults(h io.Writer, results [][]int) {
	var buf [8]byte
	for _, ids := range results {
		for _, id := range ids {
			buf[0] = byte(id)
			buf[1] = byte(id >> 8)
			buf[2] = byte(id >> 16)
			buf[3] = byte(id >> 24)
			h.Write(buf[:4])
		}
		buf[0], buf[1], buf[2], buf[3] = 0xff, 0xff, 0xff, 0xff
		h.Write(buf[:4])
	}
}

// driveShardEngine runs the common benchmark loop over any engine.Engine
// — the unsharded baseline and every shard count go through the identical
// drive code.
func driveShardEngine(eng engine.Engine,
	seed uint64, nodes, ticks, queries int, space geo.Rect) (entry shardEntry, err error) {
	eng.RegisterQueries(shardQueries(rng.New(seed).Split(42), space, queries))
	w := newShardWorkload(seed, nodes, space)
	h := fnv.New64a()
	var ingestD, drainD, evalD time.Duration
	for tick := 1; tick <= ticks; tick++ {
		now := float64(tick)
		ups := w.step(now)
		t0 := time.Now()
		for _, u := range ups {
			if !eng.Ingest(u) {
				return entry, fmt.Errorf("overflow at tick %d (queue sized for no-overflow)", tick)
			}
		}
		t1 := time.Now()
		eng.Drain(-1)
		t2 := time.Now()
		eng.ObserveStatistics(w.pos, w.speeds)
		res := eng.Evaluate(now)
		t3 := time.Now()
		hashResults(h, res)
		ingestD += t1.Sub(t0)
		drainD += t2.Sub(t1)
		evalD += t3.Sub(t2)
	}
	total := ingestD + drainD + evalD
	entry = shardEntry{
		IngestMS:   float64(ingestD.Microseconds()) / 1e3,
		DrainMS:    float64(drainD.Microseconds()) / 1e3,
		EvaluateMS: float64(evalD.Microseconds()) / 1e3,
		TotalMS:    float64(total.Microseconds()) / 1e3,
		Applied:    eng.Applied(),
		ResultHash: h.Sum64(),
	}
	if secs := total.Seconds(); secs > 0 {
		entry.UpdatesPerSec = float64(eng.Applied()) / secs
	}
	return entry, nil
}

// runShardBench compares the unsharded server against shard.Server at
// each requested K over one deterministic workload, checking that every
// engine produced byte-identical query results, and writes the table to
// stdout (and the JSON report to jsonPath when set).
func runShardBench(ks []int, nodes, ticks, queries int, seed uint64, jsonPath string) error {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	coreCfg := cqserver.Config{
		Space:     space,
		Nodes:     nodes,
		L:         100,
		Curve:     fmodel.Hyperbolic(5, 100, 95),
		QueueSize: nodes * 2, // no-overflow regime: determinism is exact
	}
	report := shardReport{
		Command:    strings.Join(os.Args, " "),
		Nodes:      nodes,
		Ticks:      ticks,
		Queries:    queries,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	fmt.Fprintf(os.Stderr, "shard bench: %d nodes, %d ticks, %d queries\n", nodes, ticks, queries)
	ref, err := engine.New(coreCfg, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "  baseline (cqserver)...")
	base, err := driveShardEngine(ref, seed, nodes, ticks, queries, space)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, " %8.0fms\n", base.TotalMS)
	report.BaselineHash = base.ResultHash
	report.BaselineTotalMS = base.TotalMS

	report.AllIdentical = true
	var k1Total float64
	for _, k := range ks {
		s, err := shard.New(shard.Config{Core: coreCfg, Shards: k})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  K=%-3d...", k)
		entry, err := driveShardEngine(s, seed, nodes, ticks, queries, space)
		if err != nil {
			return err
		}
		entry.K = k
		entry.IdenticalToK1 = entry.ResultHash == report.BaselineHash
		report.AllIdentical = report.AllIdentical && entry.IdenticalToK1
		if k == 1 {
			k1Total = entry.TotalMS
		}
		if k1Total > 0 && entry.TotalMS > 0 {
			entry.SpeedupVsK1 = k1Total / entry.TotalMS
		}
		report.Entries = append(report.Entries, entry)
		fmt.Fprintf(os.Stderr, " %8.0fms  identical=%v\n", entry.TotalMS, entry.IdenticalToK1)
	}

	fmt.Printf("shard scaling (%d nodes, %d ticks, %d queries, %d CPUs)\n",
		nodes, ticks, queries, report.NumCPU)
	fmt.Printf("%-10s %10s %10s %10s %10s %12s %10s %s\n",
		"engine", "ingest", "drain", "evaluate", "total", "updates/s", "speedup", "identical")
	fmt.Printf("%-10s %9.0fms %9.0fms %9.0fms %9.0fms %12.0f %10s %v\n",
		"cqserver", base.IngestMS, base.DrainMS, base.EvaluateMS, base.TotalMS,
		base.UpdatesPerSec, "-", true)
	for _, e := range report.Entries {
		sp := "-"
		if e.SpeedupVsK1 > 0 {
			sp = fmt.Sprintf("%.2f×", e.SpeedupVsK1)
		}
		fmt.Printf("K=%-8d %9.0fms %9.0fms %9.0fms %9.0fms %12.0f %10s %v\n",
			e.K, e.IngestMS, e.DrainMS, e.EvaluateMS, e.TotalMS,
			e.UpdatesPerSec, sp, e.IdenticalToK1)
	}
	if !report.AllIdentical {
		return fmt.Errorf("determinism violation: sharded results diverged from the unsharded baseline")
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}

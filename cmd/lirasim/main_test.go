package main

import (
	"testing"

	"lira/internal/shedding"
	"lira/internal/workload"
)

func TestParseStrategy(t *testing.T) {
	for _, k := range shedding.Kinds() {
		got, err := parseStrategy(k.String())
		if err != nil || got != k {
			t.Errorf("parseStrategy(%q) = (%v, %v)", k.String(), got, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestParseDist(t *testing.T) {
	for _, d := range []workload.Distribution{workload.Proportional, workload.Inverse, workload.Random} {
		got, err := parseDist(d.String())
		if err != nil || got != d {
			t.Errorf("parseDist(%q) = (%v, %v)", d.String(), got, err)
		}
	}
	if _, err := parseDist("bogus"); err == nil {
		t.Error("bogus distribution accepted")
	}
}

func TestMin(t *testing.T) {
	if min(3, 5) != 3 || min(5, 3) != 3 {
		t.Error("min broken")
	}
}

// Command lirasim runs a single LIRA simulation and prints the §4.1
// accuracy metrics plus the update and messaging accounting.
//
// Usage:
//
//	lirasim -strategy lira -z 0.5 -l 250
//	lirasim -strategy random-drop -z 0.3 -nodes 4000 -dist inverse
//	lirasim -strategy lira -shards 4
//	lirasim -journal run.jsonl -series series.txt -timing=false
//
// -shards runs the candidate system on the spatially sharded engine;
// metrics are identical to the unsharded run by the engines' determinism
// contract.
//
// -journal captures the control loop's decision journal as JSONL;
// -series prints the per-evaluation-period telemetry series as a table;
// -spans exports the candidate's pipeline span trace (adaptation stages,
// query evaluation phases) as Chrome trace-event JSON, clocked in
// simulation time. All are deterministic under a fixed seed. -timing=false suppresses
// the two wall-clock output lines, making stdout byte-reproducible (the
// telemetry zero-diff check in scripts/check.sh relies on this).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lira/internal/experiment"
	"lira/internal/roadnet"
	"lira/internal/shedding"
	"lira/internal/spans"
	"lira/internal/telemetry"
	"lira/internal/workload"
)

func main() {
	var (
		strategy = flag.String("strategy", "lira", "lira | lira-grid | uniform-delta | random-drop")
		z        = flag.Float64("z", 0.5, "throttle fraction")
		l        = flag.Int("l", 100, "number of shedding regions")
		fairness = flag.Float64("fairness", 50, "fairness threshold Δ⇔ (meters)")
		nodes    = flag.Int("nodes", 3000, "mobile node count")
		side     = flag.Float64("side", 7000, "space side length (meters)")
		mon      = flag.Float64("mn", 0.01, "query-to-node ratio m/n")
		w        = flag.Float64("w", 1000, "query side length parameter (meters)")
		dist     = flag.String("dist", "proportional", "proportional | inverse | random")
		duration = flag.Int("duration", 600, "measured ticks (1 s each)")
		shards   = flag.Int("shards", 1, "candidate engine shard count (1 = unsharded; results identical)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		journal  = flag.String("journal", "", "write the decision journal to this JSONL file")
		series   = flag.String("series", "", "write the per-period telemetry series table to this file")
		spansOut = flag.String("spans", "", "write the pipeline span trace to this file (Chrome trace-event JSON)")
		timing   = flag.Bool("timing", true, "print wall-clock lines (disable for byte-reproducible output)")
	)
	flag.Parse()

	kind, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	qd, err := parseDist(*dist)
	if err != nil {
		fatal(err)
	}

	netCfg := roadnet.DefaultConfig()
	netCfg.Side = *side
	netCfg.GridStep = *side / 20
	netCfg.Seed = *seed
	envCfg := experiment.DefaultEnvConfig()
	envCfg.Net = netCfg
	envCfg.Nodes = *nodes
	envCfg.TraceSeed = *seed + 1
	envCfg.CalibNodes = min(*nodes, 1000)
	envCfg.CalibTicks = 180

	fmt.Fprintln(os.Stderr, "building environment...")
	env, err := experiment.NewEnv(envCfg)
	if err != nil {
		fatal(err)
	}

	cfg := experiment.DefaultRunConfig()
	cfg.Strategy = kind
	cfg.Z = *z
	cfg.L = *l
	cfg.Fairness = *fairness
	cfg.MOverN = *mon
	cfg.QuerySide = *w
	cfg.QueryDist = qd
	cfg.DurationTicks = *duration
	cfg.Shards = *shards
	cfg.Seed = *seed + 2

	// Telemetry rides along whenever an output wants it. It is passive:
	// the metric lines below are identical with and without it.
	var hub *telemetry.Hub
	var tracer *spans.Tracer
	if *journal != "" || *series != "" || *spansOut != "" {
		hub = telemetry.NewHub(0)
		cfg.Telemetry = hub
		if *journal != "" {
			f, err := os.Create(*journal)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			hub.Journal.SetSink(f)
		}
		if *spansOut != "" {
			// The tracer's clock is slaved to the hub clock, which the
			// experiment drives from simulation time — so the exported
			// trace is byte-identical under a fixed seed.
			tracer = spans.New(spans.Config{Seed: *seed})
			hub.SetSpans(tracer)
		}
	}

	start := time.Now()
	res, err := experiment.Run(env, cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if tracer != nil {
		f, err := os.Create(*spansOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if hub != nil {
		if err := hub.Journal.Err(); err != nil {
			fatal(fmt.Errorf("journal sink: %w", err))
		}
		if *series != "" {
			f, err := os.Create(*series)
			if err != nil {
				fatal(err)
			}
			fig := experiment.SeriesFigure("series", "per-period telemetry", hub, []string{
				"sim_sent_updates", "sim_admitted_updates",
				"sim_reference_updates", "sim_containment_mean",
			})
			fig.Render(f)
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	fmt.Printf("strategy            %v\n", res.Strategy)
	fmt.Printf("throttle fraction   %.3f (achieved %.3f, budget met: %v)\n",
		res.Z, res.AchievedFraction, res.BudgetMet)
	fmt.Printf("containment error   %.4f (stddev %.4f, cov %.3f)\n",
		res.Metrics.MeanContainment, res.Metrics.StdDevContainment, res.Metrics.CovContainment)
	fmt.Printf("position error      %.2f m\n", res.Metrics.MeanPosition)
	fmt.Printf("updates             reference %d, sent %d, admitted %d\n",
		res.ReferenceUpdates, res.SentUpdates, res.AdmittedUpdates)
	if *timing {
		fmt.Printf("config cost         %v\n", res.ConfigElapsed.Round(time.Microsecond))
	}
	fmt.Printf("base stations       %d (%.1f regions, %.0f B broadcast each; %d hand-offs)\n",
		res.Stations, res.RegionsPerStation, res.BroadcastBytesPerStation, res.Handoffs)
	if *timing {
		fmt.Printf("wall clock          %v\n", elapsed.Round(time.Millisecond))
	}
}

func parseStrategy(s string) (shedding.Kind, error) {
	for _, k := range shedding.Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func parseDist(s string) (workload.Distribution, error) {
	for _, d := range []workload.Distribution{workload.Proportional, workload.Inverse, workload.Random} {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown distribution %q", s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lirasim:", err)
	os.Exit(1)
}

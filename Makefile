# Developer entry points. `make check` is the gate PRs must pass; it is
# also available as scripts/check.sh for environments without make.

GO ?= go

.PHONY: check vet fmt-gate wiring-guard doc-gate build test race fuzz-smoke chaos bench-smoke shard-smoke policy-smoke obs-smoke obs-demo allocs-gate saturate-smoke admission-smoke spans-smoke plan-smoke measured-smoke bench-report bench-report-obs bench-report-shard bench-report-policy bench-report-saturate bench-report-admission bench-report-spans bench-report-plan bench-report-measured clean

check: vet fmt-gate wiring-guard doc-gate build race allocs-gate fuzz-smoke chaos bench-smoke shard-smoke policy-smoke saturate-smoke obs-smoke admission-smoke spans-smoke plan-smoke measured-smoke

vet:
	$(GO) vet ./...

fmt-gate:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "files not gofmt-formatted:"; echo "$$unformatted"; exit 1; \
	fi; \
	echo "gofmt clean"

# The GRIDREDUCE -> GREEDYINCREMENT wiring must exist exactly once, in
# internal/controlplane (plus partition's internal helper and the facade
# passthrough). See scripts/check.sh for the same guard without make.
wiring-guard:
	@bad="$$(grep -rn --include='*.go' -e 'throttler\.SetThrottlers(' -e 'partition\.GridReduce(' . \
		| grep -v '_test\.go' \
		| grep -v '^\./internal/controlplane/' \
		| grep -v '^\./internal/partition/partition\.go' \
		| grep -v '^\./lira\.go' || true)"; \
	if [ -n "$$bad" ]; then \
		echo "adaptation pipeline wired outside internal/controlplane:"; echo "$$bad"; exit 1; \
	fi; \
	echo "wiring single-homed"

# Every package must carry a doc comment (// Package … or // Command …);
# godoc and the README package map depend on them.
doc-gate:
	@missing="$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)"; \
	if [ -n "$$missing" ]; then \
		echo "packages missing a doc comment:"; echo "$$missing"; exit 1; \
	fi; \
	echo "all packages documented"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short adversarial pass over every wire decoder and the frame reader:
# malformed input must error, never panic or over-allocate. `go test`
# accepts a single -fuzz target at a time, hence the loop.
FUZZ_TARGETS := FuzzDecodeHello FuzzDecodeUpdate FuzzDecodeAssignment \
	FuzzDecodeQuery FuzzDecodeResult FuzzDecodePing FuzzDecodeUpdateBatch \
	FuzzReadFrame

fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime 5s ./internal/wire || exit 1; \
	done

# Race-enabled fault-injection suite: deterministic chaos (reconnect,
# reconvergence, goroutine hygiene) plus graceful-degradation checks.
chaos:
	$(GO) test -race -count 1 -run 'Chaos|LossDegrades|Reconnect|ClientErr|Overflow|DrainPerTick' ./internal/netsvc

# One iteration of the Figure 4 benchmark: catches bit-rot in the bench
# harness without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench Fig04 -benchtime 1x .

# Quick sweep of the sharded engine: errors unless every K produced
# byte-identical query results to the unsharded baseline.
shard-smoke:
	$(GO) run ./cmd/lirabench -shards 1,4 -nodes 400 -duration 40

# One-seed run of the §4-style measured policy comparison: every registry
# policy vs LIRA on measured E^C/E^P at equal throttle fraction, over the
# road-network trace and a named scenario.
policy-smoke:
	$(GO) run ./cmd/lirabench -policy -nodes 600 -duration 60

# Telemetry smoke: lirad introspection endpoints plus the zero-diff
# passivity check (same seed, same output, journal on or off).
obs-smoke:
	sh scripts/obs_smoke.sh

# AllocsPerRun gates: the ingest hot path's memory model (0 allocations
# for ingest/drain/apply, ≤1 per Evaluate, zero-alloc batch decode).
allocs-gate:
	sh scripts/allocs_gate.sh

# Tiny saturation ramp: proves -saturate runs, writes schema-complete
# JSON, and ramps the offered rate monotonically. Not a measurement.
saturate-smoke:
	sh scripts/saturate_smoke.sh

# Degradation-ladder smoke: lirad with -admission, a liranode flood past
# the shed threshold, and the full escalate → pre-shed → recover round
# trip asserted through /metrics and /debug/lira.
admission-smoke:
	sh scripts/admission_smoke.sh

# Span-tracing smoke: lirad with -spans and armed SLOs, the Perfetto
# trace endpoint, the record-conservation ledger (zero violations), and
# lirasim's byte-identical trace export under a fixed seed.
spans-smoke:
	sh scripts/spans_smoke.sh

# Capacity-planner smoke: liraplan over a tiny grid — a feasible,
# replay-verified plan with a stable schema and a byte-identical rerun.
plan-smoke:
	sh scripts/plan_smoke.sh

# Measured-evaluation smoke: the shrunk measured policy comparison plus
# liraplan -measured — schema-complete artifacts, lira no worse than the
# region-oblivious baselines on measured E^C, byte-identical reruns.
measured-smoke:
	sh scripts/measured_smoke.sh

# Interactive observability demo: boots lirad with /metrics and
# /debug/lira (plus pprof) on :17401 and leaves it running — curl away,
# ^C to stop. See README "Observability" for a sample session.
obs-demo:
	$(GO) run ./cmd/lirad -listen 127.0.0.1:17400 -http 127.0.0.1:17401 \
		-pprof -nodes 1000 -l 49 -side 5000 -adapt 5s -eval 2s

# Regenerate the serial-vs-parallel timing artifact.
bench-report:
	$(GO) run ./cmd/lirabench -nodes 1500 -duration 300 -parallel 4 -json BENCH_PR1.json

# Regenerate the telemetry-overhead artifact (Evaluate-latency histogram,
# per-stage breakdown, on/off overhead).
bench-report-obs:
	$(GO) run ./cmd/lirabench -exp fig9 -nodes 1500 -duration 300 -parallel 4 -obs -json BENCH_PR3.json

# Regenerate the shard-scaling artifact (per-K timing plus the cross-K
# result-identity verdict).
bench-report-shard:
	$(GO) run ./cmd/lirabench -shards 1,2,4,8 -shardjson BENCH_PR4.json

# Regenerate the measured policy-comparison artifact: every registry
# policy's measured E^C/E^P per (workload, z) — the successor of the
# modeled-objective BENCH_PR5 table.
bench-report-policy: bench-report-measured

bench-report-measured:
	$(GO) run ./cmd/lirabench -policy -policyjson BENCH_PR10.json

# Regenerate the ingest-saturation artifact: offered-rate ramp to the
# knee plus the single-core per-update-vs-batched path comparison.
bench-report-saturate:
	$(GO) run ./cmd/lirabench -saturate -saturatejson BENCH_PR6.json

# Regenerate the degradation-ladder artifact: flash-crowd overload
# timeline (escalation, pre-shed, recovery) plus the healthy-state
# overhead budget check.
bench-report-admission:
	$(GO) run ./cmd/lirabench -admission -admissionjson BENCH_PR7.json

# Regenerate the span-tracing overhead artifact: the same run at four
# arming levels (no hub, hub only, 1-in-8 sampled, fully traced) plus
# the output-identity and export-determinism verdicts.
bench-report-spans:
	$(GO) run ./cmd/lirabench -spansoverhead -spansjson BENCH_PR8.json

# Regenerate the capacity-plan artifact: the default K × z × policy grid
# over the full scenario catalog against the default SLO.
bench-report-plan:
	$(GO) run ./cmd/liraplan -q -json BENCH_PR9.json

clean:
	$(GO) clean ./...

# Developer entry points. `make check` is the gate PRs must pass; it is
# also available as scripts/check.sh for environments without make.

GO ?= go

.PHONY: check vet build test race fuzz-smoke chaos bench-smoke bench-report clean

check: vet build race fuzz-smoke chaos bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short adversarial pass over every wire decoder and the frame reader:
# malformed input must error, never panic or over-allocate. `go test`
# accepts a single -fuzz target at a time, hence the loop.
FUZZ_TARGETS := FuzzDecodeHello FuzzDecodeUpdate FuzzDecodeAssignment \
	FuzzDecodeQuery FuzzDecodeResult FuzzDecodePing FuzzReadFrame

fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime 5s ./internal/wire || exit 1; \
	done

# Race-enabled fault-injection suite: deterministic chaos (reconnect,
# reconvergence, goroutine hygiene) plus graceful-degradation checks.
chaos:
	$(GO) test -race -count 1 -run 'Chaos|LossDegrades|Reconnect|ClientErr|Overflow|DrainPerTick' ./internal/netsvc

# One iteration of the Figure 4 benchmark: catches bit-rot in the bench
# harness without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench Fig04 -benchtime 1x .

# Regenerate the serial-vs-parallel timing artifact.
bench-report:
	$(GO) run ./cmd/lirabench -nodes 1500 -duration 300 -parallel 4 -json BENCH_PR1.json

clean:
	$(GO) clean ./...

# Developer entry points. `make check` is the gate PRs must pass; it is
# also available as scripts/check.sh for environments without make.

GO ?= go

.PHONY: check vet build test race bench-smoke bench-report clean

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the Figure 4 benchmark: catches bit-rot in the bench
# harness without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench Fig04 -benchtime 1x .

# Regenerate the serial-vs-parallel timing artifact.
bench-report:
	$(GO) run ./cmd/lirabench -nodes 1500 -duration 300 -parallel 4 -json BENCH_PR1.json

clean:
	$(GO) clean ./...

// Ablation benchmarks for the design choices DESIGN.md §6 calls out:
// the §3.1.2 speed factor, the fairness threshold extremes, the
// statistics-grid resolution rule, and the Lira-Grid / Uniform Δ
// strategy ablations at a fixed operating point.
package lira_test

import (
	"testing"

	"lira"
)

// BenchmarkAblationSpeedFactor compares the containment error with the
// speed factor on and off. Regions with fast nodes generate more updates
// per node; modeling that (§3.1.2) should not hurt and typically helps.
func BenchmarkAblationSpeedFactor(b *testing.B) {
	env := benchSetup(b)
	cfg := benchSweep().Base
	b.ResetTimer()
	var withSpeed, withoutSpeed float64
	for i := 0; i < b.N; i++ {
		cfg.UseSpeed = true
		res, err := lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		withSpeed = res.Metrics.MeanContainment
		cfg.UseSpeed = false
		res, err = lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		withoutSpeed = res.Metrics.MeanContainment
	}
	b.ReportMetric(withSpeed, "EC(speed-on)")
	b.ReportMetric(withoutSpeed, "EC(speed-off)")
}

// BenchmarkAblationFairnessExtremes compares the two degenerate fairness
// settings: Δ⇔ = Δ⊣ − Δ⊢ (unconstrained, the original formulation) vs a
// tight Δ⇔ = 10 m.
func BenchmarkAblationFairnessExtremes(b *testing.B) {
	env := benchSetup(b)
	cfg := benchSweep().Base
	b.ResetTimer()
	var loose, tight float64
	for i := 0; i < b.N; i++ {
		cfg.Fairness = 95
		res, err := lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		loose = res.Metrics.MeanPosition
		cfg.Fairness = 10
		res, err = lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		tight = res.Metrics.MeanPosition
	}
	b.ReportMetric(loose, "EP(Δ⇔=95)")
	b.ReportMetric(tight, "EP(Δ⇔=10)")
}

// BenchmarkAblationAlphaRule compares the paper's α = 2^⌊log₂(10√l)⌋ rule
// against a deliberately coarse statistics grid, isolating the value of
// grid resolution for GRIDREDUCE.
func BenchmarkAblationAlphaRule(b *testing.B) {
	env := benchSetup(b)
	cfg := benchSweep().Base
	b.ResetTimer()
	var ruled, coarse float64
	for i := 0; i < b.N; i++ {
		cfg.Alpha = 0 // paper's rule
		res, err := lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ruled = res.Metrics.MeanContainment
		cfg.Alpha = 16
		res, err = lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		coarse = res.Metrics.MeanContainment
	}
	b.ReportMetric(ruled, "EC(alpha=rule)")
	b.ReportMetric(coarse, "EC(alpha=16)")
}

// BenchmarkAblationReAdaptation compares a single warmup-time adaptation
// against periodic re-adaptation during measurement.
func BenchmarkAblationReAdaptation(b *testing.B) {
	env := benchSetup(b)
	cfg := benchSweep().Base
	b.ResetTimer()
	var once, periodic float64
	for i := 0; i < b.N; i++ {
		cfg.ReAdaptEvery = 0
		res, err := lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		once = res.Metrics.MeanContainment
		cfg.ReAdaptEvery = 100
		res, err = lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		periodic = res.Metrics.MeanContainment
	}
	b.ReportMetric(once, "EC(adapt-once)")
	b.ReportMetric(periodic, "EC(re-adapt)")
}

// BenchmarkAblationQueryProtection measures the query-protective
// drill-down extension (DESIGN.md §5a): the containment error of LIRA
// with and without reserving splits for at-risk queries, under the Random
// query distribution where the sacrifice artifact is strongest.
func BenchmarkAblationQueryProtection(b *testing.B) {
	env := benchSetup(b)
	cfg := benchSweep().Base
	cfg.QueryDist = lira.Random
	b.ResetTimer()
	var plain, protected float64
	for i := 0; i < b.N; i++ {
		cfg.ProtectQueries = 0
		res, err := lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		plain = res.Metrics.MeanContainment
		cfg.ProtectQueries = 0.5
		res, err = lira.Run(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		protected = res.Metrics.MeanContainment
	}
	b.ReportMetric(plain, "EC(paper-exact)")
	b.ReportMetric(protected, "EC(protect=0.5)")
}

#!/bin/sh
# Saturation-benchmark smoke: run a tiny ramp (small population, two
# short slices) and assert the artifact's shape — every schema field
# present, one step per rung, offered rates strictly increasing, and a
# positive path-comparison speedup. This is a correctness gate for the
# harness, not a measurement; real numbers come from
# `make bench-report-saturate` on a quiet machine.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

OUT="$TMP/saturate.json"
go run ./cmd/lirabench -saturate -nodes 200 -satsteps 2 -satbase 50000 \
	-satslice 80ms -saturatejson "$OUT" 2>"$TMP/progress.log"

for field in '"command"' '"nodes"' '"shards"' '"batch_size"' '"slice_ms"' \
	'"num_cpu"' '"gomaxprocs"' '"steps"' '"knee"' '"paths"' \
	'"offered_per_sec"' '"achieved_per_sec"' '"efficiency"' \
	'"p99_evaluate_ms"' '"evals"' '"shed"' '"gc_cycles"' '"gc_pause_ms"' \
	'"heap_alloc_mb"' '"per_update_per_sec"' '"batch_per_sec"' \
	'"speedup"' '"records"'; do
	grep -q "$field" "$OUT" || {
		echo "saturate artifact missing field $field" >&2
		cat "$OUT" >&2
		exit 1
	}
done

# Scope the ramp asserts to the steps array: the knee block repeats one
# step's fields and would otherwise double-count.
sed -n '/"steps"/,/"knee"/p' "$OUT" >"$TMP/steps.json"
steps="$(grep -c '"offered_per_sec"' "$TMP/steps.json")"
if [ "$steps" -ne 2 ]; then
	echo "saturate artifact has $steps ramp steps, want 2" >&2
	cat "$OUT" >&2
	exit 1
fi

# The ramp must offer strictly increasing rates step over step.
grep -o '"offered_per_sec": [0-9.e+]*' "$TMP/steps.json" | awk '{print $2}' |
	awk 'NR > 1 && $1 + 0 <= prev + 0 { exit 1 } { prev = $1 }' || {
	echo "offered rates are not strictly increasing across steps" >&2
	cat "$OUT" >&2
	exit 1
}

# The path comparison must have measured both disciplines.
grep -o '"speedup": [0-9.e+]*' "$OUT" | awk '{ exit ($2 + 0 > 0) ? 0 : 1 }' || {
	echo "path-comparison speedup is not positive" >&2
	cat "$OUT" >&2
	exit 1
}

echo "saturate smoke: OK (schema complete, ramp monotone)"

#!/bin/sh
# Repository check gate: vet, build, race-enabled tests, and a one-shot
# benchmark smoke. Mirrors `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "files not gofmt-formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== wiring guard (adaptation pipeline single-homed in controlplane) =="
# The GRIDREDUCE -> GREEDYINCREMENT wiring must exist exactly once.
# Allowed qualified call sites outside tests: the control plane itself,
# partition's internal accuracy-gain helper, and the public facade
# passthrough. Anything else reintroduces the PR-4 duplication.
bad="$(grep -rn --include='*.go' -e 'throttler\.SetThrottlers(' -e 'partition\.GridReduce(' . \
	| grep -v '_test\.go' \
	| grep -v '^\./internal/controlplane/' \
	| grep -v '^\./internal/partition/partition\.go' \
	| grep -v '^\./lira\.go' || true)"
if [ -n "$bad" ]; then
	echo "adaptation pipeline wired outside internal/controlplane:" >&2
	echo "$bad" >&2
	exit 1
fi
echo "wiring single-homed"

echo "== package docs (every package must carry a doc comment) =="
missing="$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)"
if [ -n "$missing" ]; then
	echo "packages missing a doc comment:" >&2
	echo "$missing" >&2
	exit 1
fi
echo "all $(go list ./... | wc -l | tr -d ' ') packages documented"

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== allocation gates (zero-alloc hot paths) =="
sh scripts/allocs_gate.sh

echo "== fuzz smoke (wire decoders, 5s each) =="
for t in FuzzDecodeHello FuzzDecodeUpdate FuzzDecodeAssignment \
         FuzzDecodeQuery FuzzDecodeResult FuzzDecodePing \
         FuzzDecodeUpdateBatch FuzzReadFrame; do
	echo "fuzz $t"
	go test -run '^$' -fuzz "^${t}\$" -fuzztime 5s ./internal/wire
done

echo "== chaos (race-enabled fault-injection suite) =="
go test -race -count 1 -run 'Chaos|LossDegrades|Reconnect|ClientErr|Overflow|DrainPerTick' ./internal/netsvc

echo "== bench smoke (Fig04, 1 iteration) =="
go test -run '^$' -bench Fig04 -benchtime 1x .

echo "== shard smoke (K sweep, byte-identical results enforced) =="
go run ./cmd/lirabench -shards 1,4 -nodes 400 -duration 40

echo "== policy smoke (measured policy comparison, one seed) =="
go run ./cmd/lirabench -policy -nodes 600 -duration 60

echo "== saturate smoke (tiny ramp; schema + monotone offered rates) =="
sh scripts/saturate_smoke.sh

echo "== telemetry smoke (introspection endpoints + zero-diff sim) =="
sh scripts/obs_smoke.sh

echo "== admission smoke (degradation ladder round trip over sockets) =="
sh scripts/admission_smoke.sh

echo "== spans smoke (trace endpoint, ledger conservation, SLO gauges) =="
sh scripts/spans_smoke.sh

echo "== plan smoke (liraplan tiny grid; feasible + verified + byte-deterministic) =="
sh scripts/plan_smoke.sh

echo "== measured smoke (measured comparison + liraplan -measured; lira beats baselines, byte-deterministic) =="
sh scripts/measured_smoke.sh

echo "check: OK"

#!/bin/sh
# Repository check gate: vet, build, race-enabled tests, and a one-shot
# benchmark smoke. Mirrors `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (Fig04, 1 iteration) =="
go test -run '^$' -bench Fig04 -benchtime 1x .

echo "check: OK"

#!/bin/sh
# Repository check gate: vet, build, race-enabled tests, and a one-shot
# benchmark smoke. Mirrors `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== package docs (every package must carry a doc comment) =="
missing="$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)"
if [ -n "$missing" ]; then
	echo "packages missing a doc comment:" >&2
	echo "$missing" >&2
	exit 1
fi
echo "all $(go list ./... | wc -l | tr -d ' ') packages documented"

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (wire decoders, 5s each) =="
for t in FuzzDecodeHello FuzzDecodeUpdate FuzzDecodeAssignment \
         FuzzDecodeQuery FuzzDecodeResult FuzzDecodePing FuzzReadFrame; do
	echo "fuzz $t"
	go test -run '^$' -fuzz "^${t}\$" -fuzztime 5s ./internal/wire
done

echo "== chaos (race-enabled fault-injection suite) =="
go test -race -count 1 -run 'Chaos|LossDegrades|Reconnect|ClientErr|Overflow|DrainPerTick' ./internal/netsvc

echo "== bench smoke (Fig04, 1 iteration) =="
go test -run '^$' -bench Fig04 -benchtime 1x .

echo "== shard smoke (K sweep, byte-identical results enforced) =="
go run ./cmd/lirabench -shards 1,4 -nodes 400 -duration 40

echo "== telemetry smoke (introspection endpoints + zero-diff sim) =="
sh scripts/obs_smoke.sh

echo "check: OK"

#!/bin/sh
# Measured-evaluation smoke: run the shrunk measured policy comparison
# (lirabench -policy) and the measured-error planner (liraplan -measured)
# and assert their contracts — stable JSON schemas, lira no worse than
# the region-oblivious baselines on measured E^C at every (workload, z),
# a feasible replay-verified recommendation, and byte-identical artifacts
# from identical invocations. This gates the harness; the real artifact
# comes from `make bench-report-measured`.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/lirabench" ./cmd/lirabench
go build -o "$TMP/liraplan" ./cmd/liraplan

# --- measured policy comparison -------------------------------------

run_bench() {
	# cd so argv (recorded in the artifact's "command" field) is identical
	# across runs — the byte-identity check depends on it.
	(cd "$1" && "$TMP/lirabench" -policy -nodes 600 -duration 60 \
		-policyjson bench.json >bench.txt 2>/dev/null)
}

mkdir -p "$TMP/a" "$TMP/b"
run_bench "$TMP/a"
BENCH="$TMP/a/bench.json"

for field in '"command"' '"nodes"' '"warmup_ticks"' '"duration_ticks"' \
	'"seed"' '"workloads"' '"policies"' '"zs"' '"cells"' \
	'"workload"' '"policy"' '"z"' '"ec"' '"ep_m"' '"rel_ec_lira"' \
	'"rel_ep_lira"' '"achieved_fraction"' '"budget_met"' \
	'"lira_beats_baselines"'; do
	grep -q "$field" "$BENCH" || {
		echo "measured bench artifact missing field $field" >&2
		cat "$BENCH" >&2
		exit 1
	}
done

# The paper's §4 headline, checked on measurements: lira's measured
# containment error is no worse than random-drop's and single-delta's at
# every (workload, z).
grep -q '"lira_beats_baselines": true' "$BENCH" || {
	echo "lira lost to a region-oblivious baseline on measured E^C" >&2
	cat "$BENCH" >&2
	exit 1
}

run_bench "$TMP/b"
cmp -s "$BENCH" "$TMP/b/bench.json" || {
	echo "identical lirabench -policy invocations produced different artifacts" >&2
	exit 1
}

# --- measured-error planner -----------------------------------------

run_plan() {
	(cd "$1" && "$TMP/liraplan" -measured -nodes 300 -side 4000 -ticks 60 \
		-zs 0.4,0.6 -workloads trace,blackout -policies single-delta,lira \
		-slo-ec 0.05 -slo-ep 10 \
		-json plan.json >plan.txt 2>/dev/null)
}

run_plan "$TMP/a"
PLAN="$TMP/a/plan.json"

for field in '"command"' '"nodes"' '"regions"' '"slo"' '"max_ec"' \
	'"max_ep_m"' '"workloads"' '"policies"' '"zs"' '"combos"' \
	'"worst_ec"' '"worst_ep_m"' '"cells"' '"feasible"' '"recommended"' \
	'"verified"'; do
	grep -q "$field" "$PLAN" || {
		echo "measured plan artifact missing field $field" >&2
		cat "$PLAN" >&2
		exit 1
	}
done

grep -q '"feasible": true' "$PLAN" || {
	echo "measured planner found no feasible configuration on the smoke grid" >&2
	cat "$PLAN" >&2
	exit 1
}
grep -q '"verified": true' "$PLAN" || {
	echo "measured planner replay verification failed" >&2
	cat "$PLAN" >&2
	exit 1
}
grep -q 'recommended' "$TMP/a/plan.txt" || {
	echo "measured plan table is missing the recommendation line" >&2
	cat "$TMP/a/plan.txt" >&2
	exit 1
}

run_plan "$TMP/b"
cmp -s "$PLAN" "$TMP/b/plan.json" || {
	echo "identical liraplan -measured invocations produced different artifacts" >&2
	exit 1
}

echo "measured smoke: OK (lira beats baselines, plan feasible + verified, both artifacts byte-deterministic)"

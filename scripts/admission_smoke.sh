#!/bin/sh
# Admission smoke: boot lirad with the degradation ladder enabled and a
# deliberately tiny queue, flood it past the shed threshold with
# liranode fleets, and assert (1) the ladder escalates and pre-rejects
# ingest, (2) the lira_admission_* metric families and the /debug/lira
# ladder view are live, and (3) once the flood stops the ladder walks
# back down to healthy — the graceful-degradation round trip, end to
# end over real sockets.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
LIRAD_PID=""
NODE_PID=""
cleanup() {
	[ -n "$NODE_PID" ] && kill "$NODE_PID" 2>/dev/null || true
	[ -n "$LIRAD_PID" ] && kill "$LIRAD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

LISTEN=127.0.0.1:17410
HTTP=127.0.0.1:17411

echo "-- lirad with admission ladder --"
go build -o "$TMP/lirad" ./cmd/lirad
go build -o "$TMP/liranode" ./cmd/liranode
# Tiny queue + bounded drain: a modest fleet saturates it in seconds.
"$TMP/lirad" -listen "$LISTEN" -http "$HTTP" -nodes 512 -l 13 \
	-side 2000 -queue 64 -drain 4 -adapt 5s -eval 100ms -admission \
	2>"$TMP/lirad.log" &
LIRAD_PID=$!

i=0
until curl -sf "http://$HTTP/metrics" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "lirad introspection endpoint never came up" >&2
		cat "$TMP/lirad.log" >&2
		exit 1
	fi
	kill -0 "$LIRAD_PID" 2>/dev/null || { cat "$TMP/lirad.log" >&2; exit 1; }
	sleep 0.1
done

# Let a couple of control ticks land so the ladder gauges exist.
sleep 0.3
curl -sf "http://$HTTP/metrics" >"$TMP/metrics0.txt"
for family in lira_admission_state lira_admission_transitions_total \
	lira_admission_queue_frac; do
	grep -q "^$family" "$TMP/metrics0.txt" || {
		echo "metric family $family missing from /metrics" >&2
		cat "$TMP/metrics0.txt" >&2
		exit 1
	}
done
grep -q '^lira_admission_state 0$' "$TMP/metrics0.txt" || {
	echo "ladder not healthy at boot" >&2
	grep '^lira_admission' "$TMP/metrics0.txt" >&2
	exit 1
}
echo "   ladder boots healthy; metric families present"

echo "-- flood until the ladder sheds --"
"$TMP/liranode" -server "$LISTEN" -nodes 256 -side 2000 -speedup 200 \
	-duration 60s 2>"$TMP/node.log" &
NODE_PID=$!

i=0
STATE=0
while [ "$i" -lt 200 ]; do
	STATE="$(curl -sf "http://$HTTP/metrics" | awk '/^lira_admission_state /{print $2}')"
	[ "${STATE:-0}" -ge 2 ] && break
	kill -0 "$NODE_PID" 2>/dev/null || { echo "node fleet died early" >&2; cat "$TMP/node.log" >&2; exit 1; }
	i=$((i + 1))
	sleep 0.1
done
if [ "${STATE:-0}" -lt 2 ]; then
	echo "ladder never reached shed under flood (state=$STATE)" >&2
	curl -sf "http://$HTTP/metrics" | grep '^lira_admission' >&2 || true
	cat "$TMP/lirad.log" >&2
	exit 1
fi
echo "   escalated to state $STATE under flood"

# Give the shed rung a beat to reject live traffic, then check the gate
# actually fired and the debug view exposes the ladder.
sleep 1
curl -sf "http://$HTTP/debug/lira?tail=8" >"$TMP/debug.json"
for field in '"admission"' '"state"' '"transitions"' '"pre_shed"'; do
	grep -q "$field" "$TMP/debug.json" || {
		echo "field $field missing from /debug/lira admission view" >&2
		cat "$TMP/debug.json" >&2
		exit 1
	}
done
PRESHED="$(curl -sf "http://$HTTP/metrics" | awk '/^lira_admission_preshed_total /{print $2}')"
if [ "${PRESHED:-0}" -lt 1 ]; then
	echo "shed rung admitted everything (lira_admission_preshed_total=$PRESHED)" >&2
	exit 1
fi
echo "   pre-ring gate rejected $PRESHED updates; /debug/lira ladder view present"

echo "-- stop the flood; ladder must recover --"
kill "$NODE_PID" 2>/dev/null || true
wait "$NODE_PID" 2>/dev/null || true
NODE_PID=""

i=0
while [ "$i" -lt 300 ]; do
	STATE="$(curl -sf "http://$HTTP/metrics" | awk '/^lira_admission_state /{print $2}')"
	[ "${STATE:-1}" -eq 0 ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ "${STATE:-1}" -ne 0 ]; then
	echo "ladder never recovered to healthy (state=$STATE)" >&2
	curl -sf "http://$HTTP/metrics" | grep '^lira_admission' >&2 || true
	exit 1
fi
TRANS="$(curl -sf "http://$HTTP/metrics" | awk '/^lira_admission_transitions_total /{print $2}')"
if [ "${TRANS:-0}" -lt 3 ]; then
	echo "too few ladder transitions for a full round trip ($TRANS)" >&2
	exit 1
fi
echo "   recovered to healthy after $TRANS transitions"

kill "$LIRAD_PID"
wait "$LIRAD_PID" 2>/dev/null || true
LIRAD_PID=""

echo "admission smoke: OK"

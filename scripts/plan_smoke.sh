#!/bin/sh
# Capacity-planner smoke: run liraplan over a tiny grid (small fleet, two
# shard counts, two clamps, one policy, two scenarios) and assert the
# planner's contract — a feasible plan is found, the embedded replay
# verification passed, the JSON schema is stable, and a second identical
# invocation emits a byte-identical artifact. This gates the harness;
# real plans come from `make bench-report-plan`.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/liraplan" ./cmd/liraplan

run_plan() {
	# cd so argv (recorded in the artifact's "command" field) is identical
	# across runs — the byte-identity check depends on it.
	(cd "$1" && "$TMP/liraplan" -q -nodes 200 -rate 20 -seed 3 \
		-ks 1,2 -zclamps 1,0.5 -policies lira \
		-scenarios blackout,query-churn \
		-slo-p99ms 5000 -slo-inacc 12 -slo-rung shed \
		-json plan.json >plan.txt 2>/dev/null)
}

mkdir -p "$TMP/a" "$TMP/b"
run_plan "$TMP/a"
OUT="$TMP/a/plan.json"

for field in '"command"' '"nodes"' '"rate"' '"service_per_shard"' '"seed"' \
	'"slo"' '"p99_latency_ms"' '"max_inaccuracy_m"' '"max_rung"' \
	'"scenarios"' '"grid_shards"' '"grid_z_clamps"' '"grid_policies"' \
	'"combos"' '"outcomes"' '"z_clamp"' '"policy"' '"mean_inaccuracy_m"' \
	'"result_hash"' '"feasible"' '"recommended"' '"verified"'; do
	grep -q "$field" "$OUT" || {
		echo "plan artifact missing field $field" >&2
		cat "$OUT" >&2
		exit 1
	}
done

# The tiny grid must produce a feasible, replay-verified recommendation.
grep -q '"feasible": true' "$OUT" || {
	echo "planner found no feasible configuration on the smoke grid" >&2
	cat "$OUT" >&2
	exit 1
}
grep -q '"verified": true' "$OUT" || {
	echo "planner replay verification failed" >&2
	cat "$OUT" >&2
	exit 1
}
grep -q 'recommended' "$TMP/a/plan.txt" || {
	echo "plan table is missing the recommendation line" >&2
	cat "$TMP/a/plan.txt" >&2
	exit 1
}

# Same invocation, different directory: the artifact must be
# byte-identical — the planner is a pure function of (seed, flags).
run_plan "$TMP/b"
cmp -s "$OUT" "$TMP/b/plan.json" || {
	echo "identical liraplan invocations produced different artifacts" >&2
	exit 1
}

echo "plan smoke: OK (feasible, verified, schema complete, byte-deterministic)"

#!/bin/sh
# Span-tracing smoke: (1) boot lirad with -spans and the SLO tracker
# armed, scrape /debug/lira/spans and assert a Perfetto-loadable trace
# with pipeline spans, assert the record-conservation ledger and the SLO
# burn gauges on /metrics (the violations counter must read zero), and
# the ledger/slo blocks in /debug/lira; (2) prove the determinism and
# passivity contracts end to end — a lirasim run's stdout is identical
# with tracing on and off, and two identically seeded runs export
# byte-identical traces.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
LIRAD_PID=""
cleanup() {
	[ -n "$LIRAD_PID" ] && kill "$LIRAD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

HTTP=127.0.0.1:17403

echo "-- lirad span tracing + ledger + SLOs --"
go build -o "$TMP/lirad" ./cmd/lirad
"$TMP/lirad" -listen 127.0.0.1:17402 -http "$HTTP" -nodes 64 -l 13 \
	-side 2000 -adapt 1s -eval 100ms -shards 4 -spans \
	-slo-evalp99 0.05 -slo-inaccuracy 0.5 -slo-rung 1 2>"$TMP/lirad.log" &
LIRAD_PID=$!

# Poll until the introspection endpoint answers (or lirad died).
i=0
until curl -sf "http://$HTTP/metrics" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "lirad introspection endpoint never came up" >&2
		cat "$TMP/lirad.log" >&2
		exit 1
	fi
	kill -0 "$LIRAD_PID" 2>/dev/null || { cat "$TMP/lirad.log" >&2; exit 1; }
	sleep 0.1
done

# Let a few background ticks run so the tracer has pipeline spans and
# the ledger/SLO gauges have been published at least once.
sleep 1
curl -sf "http://$HTTP/metrics" >"$TMP/metrics.txt"

for family in lira_ledger_offered lira_ledger_applied lira_ledger_queued \
	lira_ledger_balance lira_ledger_violations_total \
	lira_slo_eval_p99_burn_short lira_slo_eval_p99_burn_long \
	lira_slo_inaccuracy_good lira_slo_rung_alerting; do
	grep -q "^$family" "$TMP/metrics.txt" || {
		echo "metric family $family missing from /metrics" >&2
		cat "$TMP/metrics.txt" >&2
		exit 1
	}
done
grep -q '^lira_ledger_violations_total 0$' "$TMP/metrics.txt" || {
	echo "record-conservation ledger reported violations" >&2
	grep '^lira_ledger' "$TMP/metrics.txt" >&2
	exit 1
}
echo "   /metrics: ledger conserved, SLO burn gauges present"

curl -sf "http://$HTTP/debug/lira/spans" >"$TMP/trace.json"
for want in '"traceEvents"' '"ph":"X"' '"name":"tick"' '"cat":"netsvc"' \
	'"name":"drain"' '"name":"adapt"' '"name":"gridreduce"' \
	'"name":"greedyincrement"' '"cat":"controlplane"' '"displayTimeUnit"'; do
	grep -q "$want" "$TMP/trace.json" || {
		echo "span trace missing $want" >&2
		cat "$TMP/trace.json" >&2
		exit 1
	}
done
echo "   /debug/lira/spans: Chrome trace-event JSON with pipeline spans"

curl -sf "http://$HTTP/debug/lira?tail=4" >"$TMP/debug.json"
for field in '"ledger"' '"offered"' '"slo"' '"eval_p99"' '"burn_long"'; do
	grep -q "$field" "$TMP/debug.json" || {
		echo "field $field missing from /debug/lira" >&2
		cat "$TMP/debug.json" >&2
		exit 1
	}
done
echo "   /debug/lira: ledger and slo blocks present"

kill "$LIRAD_PID"
wait "$LIRAD_PID" 2>/dev/null || true
LIRAD_PID=""

echo "-- span determinism + passivity (lirasim) --"
go build -o "$TMP/lirasim" ./cmd/lirasim
SIM="$TMP/lirasim -nodes 300 -side 2000 -l 13 -duration 60 -timing=false"
$SIM >"$TMP/out_plain.txt" 2>/dev/null
$SIM -spans "$TMP/t1.json" >"$TMP/out_traced.txt" 2>/dev/null
cmp "$TMP/out_plain.txt" "$TMP/out_traced.txt" || {
	echo "simulation output differs with span tracing attached" >&2
	exit 1
}
$SIM -spans "$TMP/t2.json" >/dev/null 2>&1
cmp "$TMP/t1.json" "$TMP/t2.json" || {
	echo "span trace not byte-identical across identically seeded runs" >&2
	exit 1
}
grep -q '"traceEvents"' "$TMP/t1.json" || { echo "lirasim trace is empty" >&2; exit 1; }
echo "   stdout identical with/without tracing; traces byte-identical"

echo "spans smoke: OK"

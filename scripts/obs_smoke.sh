#!/bin/sh
# Telemetry smoke: (1) boot lirad with introspection enabled and the
# sharded engine (K=4), scrape /metrics and /debug/lira, and assert the
# expected metric families — including per-shard gauges — and pipeline
# fields are present; (2) prove telemetry passivity — the same seeded
# simulation produces byte-identical output with the journal on and
# off, and two journaled runs produce byte-identical journals.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
LIRAD_PID=""
cleanup() {
	[ -n "$LIRAD_PID" ] && kill "$LIRAD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

HTTP=127.0.0.1:17401

echo "-- lirad introspection --"
go build -o "$TMP/lirad" ./cmd/lirad
"$TMP/lirad" -listen 127.0.0.1:17400 -http "$HTTP" -nodes 64 -l 13 \
	-side 2000 -adapt 1s -shards 4 -journal "$TMP/lirad.jsonl" 2>"$TMP/lirad.log" &
LIRAD_PID=$!

# Poll until the introspection endpoint answers (or lirad died).
i=0
until curl -sf "http://$HTTP/metrics" >"$TMP/metrics.txt" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "lirad introspection endpoint never came up" >&2
		cat "$TMP/lirad.log" >&2
		exit 1
	fi
	kill -0 "$LIRAD_PID" 2>/dev/null || { cat "$TMP/lirad.log" >&2; exit 1; }
	sleep 0.1
done

for family in lira_queue_depth lira_throttle_z lira_statgrid_nodes \
	lira_gridreduce_seconds_bucket lira_set_throttlers_seconds_sum \
	lira_adaptations_total lira_net_disconnects_total \
	lira_shard0_queue_depth lira_shard3_residents lira_shard_migrations_total \
	lira_frames_read_update_batch_total lira_ingest_batch_size_bucket \
	lira_batch_decode_seconds_bucket lira_gc_pause_seconds; do
	grep -q "^$family" "$TMP/metrics.txt" || {
		echo "metric family $family missing from /metrics" >&2
		cat "$TMP/metrics.txt" >&2
		exit 1
	}
done
echo "   /metrics: all families present"

curl -sf "http://$HTTP/debug/lira?tail=8" >"$TMP/debug.json"
for field in '"z"' '"regions"' '"delta"' '"journal"' '"shards": *4' '"kind": *"repartition"' '"kind": *"assign"'; do
	grep -q "$field" "$TMP/debug.json" || {
		echo "field $field missing from /debug/lira" >&2
		cat "$TMP/debug.json" >&2
		exit 1
	}
done
echo "   /debug/lira: pipeline state and journal tail present"

kill "$LIRAD_PID"
wait "$LIRAD_PID" 2>/dev/null || true
LIRAD_PID=""
[ -s "$TMP/lirad.jsonl" ] || { echo "lirad journal sink is empty" >&2; exit 1; }

echo "-- telemetry passivity (zero-diff sim) --"
go build -o "$TMP/lirasim" ./cmd/lirasim
SIM="$TMP/lirasim -nodes 300 -side 2000 -l 13 -duration 60 -timing=false"
$SIM >"$TMP/out_plain.txt" 2>/dev/null
$SIM -journal "$TMP/j1.jsonl" -series "$TMP/s1.txt" >"$TMP/out_obs.txt" 2>/dev/null
cmp "$TMP/out_plain.txt" "$TMP/out_obs.txt" || {
	echo "simulation output differs with telemetry attached" >&2
	exit 1
}
$SIM -journal "$TMP/j2.jsonl" >"$TMP/out_obs2.txt" 2>/dev/null
cmp "$TMP/j1.jsonl" "$TMP/j2.jsonl" || {
	echo "decision journal not reproducible across identically seeded runs" >&2
	exit 1
}
[ -s "$TMP/j1.jsonl" ] || { echo "simulation journal is empty" >&2; exit 1; }
echo "   stdout identical with/without telemetry; journals byte-identical"

echo "obs smoke: OK"

#!/bin/sh
# Allocation gate: the ingest hot path's memory model, enforced. Runs the
# testing.AllocsPerRun gates that pin steady-state allocation counts —
# zero for Ingest/IngestShedOldest (scalar, bulk, and columnar), Drain,
# and Apply; at most one per Evaluate — on both the unsharded and the
# sharded engine, plus the wire layer's zero-alloc batch decode.
set -eu

cd "$(dirname "$0")/.."

echo "-- engine allocation gates (cqserver, shard) --"
go test -count 1 -run 'TestAllocs' ./internal/cqserver ./internal/shard

echo "-- wire decode allocation gates --"
go test -count 1 -run 'ZeroAlloc' ./internal/wire

echo "allocs gate: OK"
